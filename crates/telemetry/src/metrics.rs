//! Counters, gauges and fixed-bucket log₂ histograms.
//!
//! Handles ([`Counter`], [`Gauge`], [`HistogramHandle`]) are resolved by
//! name once (a short registry lock) and cached by the instrumented code;
//! recording through a handle is a few atomic operations and is skipped
//! entirely below [`crate::Level::Metrics`]. The plain [`Histogram`] is the
//! same bucket layout without atomics, used for per-run scopes (the exchange
//! engine's per-step stage latencies) and as the snapshot type.

use crate::{enabled, Level};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Number of log₂ buckets. Bucket 0 holds zeros; bucket `i ≥ 1` holds
/// values in `[2^(i−1), 2^i)`; the last bucket absorbs everything larger.
pub const BUCKETS: usize = 64;

/// The bucket index for a value.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(BUCKETS - 1)
    }
}

/// A fixed-bucket log₂ histogram with exact count/sum/min/max.
///
/// # Example
///
/// ```
/// use grace_telemetry::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [1u64, 2, 3, 100, 1000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.max(), 1000);
/// assert!(h.percentile(0.5) >= 2 && h.percentile(0.5) <= 100);
/// assert_eq!(h.percentile(1.0), 1000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Raw bucket counts.
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Estimated `q`-quantile (`q` in `[0, 1]`): the geometric midpoint of
    /// the bucket holding the target rank, clamped to the exact observed
    /// `[min, max]`.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                let mid = if i == 0 {
                    0
                } else {
                    // 1.5 · 2^(i−1): midpoint of [2^(i−1), 2^i).
                    (1u64 << (i - 1)).saturating_add(1u64 << (i - 1) >> 1)
                };
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[derive(Debug)]
struct AtomicHistogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl AtomicHistogram {
    fn new() -> Self {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    fn snapshot(&self) -> Histogram {
        let mut h = Histogram::new();
        for (slot, b) in h.buckets.iter_mut().zip(self.buckets.iter()) {
            *slot = b.load(Ordering::Relaxed);
        }
        h.count = h.buckets.iter().sum();
        h.sum = self.sum.load(Ordering::Relaxed);
        h.min = self.min.load(Ordering::Relaxed);
        h.max = self.max.load(Ordering::Relaxed);
        h
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// A monotonically increasing counter handle.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `v` (skipped below the `Metrics` level).
    #[inline]
    pub fn add(&self, v: u64) {
        if enabled(Level::Metrics) {
            self.0.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value gauge handle (stores `f64` bits).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge (skipped below the `Metrics` level).
    #[inline]
    pub fn set(&self, v: f64) {
        if enabled(Level::Metrics) {
            self.0.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A shared histogram handle.
#[derive(Debug, Clone)]
pub struct HistogramHandle(Arc<AtomicHistogram>);

impl HistogramHandle {
    /// Records one observation (skipped below the `Metrics` level).
    #[inline]
    pub fn record(&self, v: u64) {
        if enabled(Level::Metrics) {
            self.0.record(v);
        }
    }

    /// Copies the current state into a plain [`Histogram`].
    pub fn snapshot(&self) -> Histogram {
        self.0.snapshot()
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<AtomicHistogram>),
}

/// One exported metric value.
#[derive(Debug, Clone)]
pub enum MetricSnapshot {
    /// A counter's name and value.
    Counter {
        /// Metric name.
        name: String,
        /// Accumulated value.
        value: u64,
    },
    /// A gauge's name and value.
    Gauge {
        /// Metric name.
        name: String,
        /// Last stored value.
        value: f64,
    },
    /// A histogram's name and state.
    Histogram {
        /// Metric name.
        name: String,
        /// Bucket/percentile state (boxed: the bucket array is large).
        hist: Box<Histogram>,
    },
}

impl MetricSnapshot {
    /// The metric's name.
    pub fn name(&self) -> &str {
        match self {
            MetricSnapshot::Counter { name, .. }
            | MetricSnapshot::Gauge { name, .. }
            | MetricSnapshot::Histogram { name, .. } => name,
        }
    }
}

fn registry() -> &'static Mutex<BTreeMap<String, Metric>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, Metric>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn lock_registry() -> MutexGuard<'static, BTreeMap<String, Metric>> {
    registry().lock().unwrap_or_else(|e| e.into_inner())
}

/// Resolves (registering on first use) the counter named `name`.
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric type.
pub fn counter(name: &str) -> Counter {
    let mut reg = lock_registry();
    let m = reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Counter(Arc::new(AtomicU64::new(0))));
    match m {
        Metric::Counter(c) => Counter(Arc::clone(c)),
        _ => panic!("metric '{name}' is not a counter"),
    }
}

/// Resolves (registering on first use) the gauge named `name`.
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric type.
pub fn gauge(name: &str) -> Gauge {
    let mut reg = lock_registry();
    let m = reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))));
    match m {
        Metric::Gauge(g) => Gauge(Arc::clone(g)),
        _ => panic!("metric '{name}' is not a gauge"),
    }
}

/// Resolves (registering on first use) the histogram named `name`.
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric type.
pub fn histogram(name: &str) -> HistogramHandle {
    let mut reg = lock_registry();
    let m = reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Histogram(Arc::new(AtomicHistogram::new())));
    match m {
        Metric::Histogram(h) => HistogramHandle(Arc::clone(h)),
        _ => panic!("metric '{name}' is not a histogram"),
    }
}

/// Snapshots every registered metric, sorted by name.
pub fn snapshot_all() -> Vec<MetricSnapshot> {
    lock_registry()
        .iter()
        .map(|(name, m)| match m {
            Metric::Counter(c) => MetricSnapshot::Counter {
                name: name.clone(),
                value: c.load(Ordering::Relaxed),
            },
            Metric::Gauge(g) => MetricSnapshot::Gauge {
                name: name.clone(),
                value: f64::from_bits(g.load(Ordering::Relaxed)),
            },
            Metric::Histogram(h) => MetricSnapshot::Histogram {
                name: name.clone(),
                hist: Box::new(h.snapshot()),
            },
        })
        .collect()
}

/// Zeroes every registered metric (existing handles stay valid).
pub fn reset_all() {
    for m in lock_registry().values() {
        match m {
            Metric::Counter(c) => c.store(0, Ordering::Relaxed),
            Metric::Gauge(g) => g.store(0f64.to_bits(), Ordering::Relaxed),
            Metric::Histogram(h) => h.reset(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set_level;

    fn serial() -> MutexGuard<'static, ()> {
        crate::test_level_gate()
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn histogram_percentiles_bracket_the_data() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        let p50 = h.percentile(0.5);
        let p99 = h.percentile(0.99);
        // Log₂ buckets: the estimate lands within a factor of 2.
        assert!((256..=1000).contains(&p50), "p50 {p50}");
        assert!(p99 >= p50, "p99 {p99} < p50 {p50}");
        assert_eq!(h.percentile(0.0), h.percentile(1e-9));
    }

    #[test]
    fn empty_histogram_is_inert() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Histogram::new();
        a.record(4);
        let mut b = Histogram::new();
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 4);
        assert_eq!(a.max(), 1_000_000);
    }

    #[test]
    fn handles_record_only_at_metrics_level() {
        let _g = serial();
        set_level(Level::Off);
        let c = counter("test.metrics.counter");
        let base = c.get();
        c.add(5);
        assert_eq!(c.get(), base, "Off level must not record");
        set_level(Level::Metrics);
        c.add(5);
        assert_eq!(c.get(), base + 5);
        let h = histogram("test.metrics.hist");
        h.record(128);
        assert!(h.snapshot().count() >= 1);
        let g = gauge("test.metrics.gauge");
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
        set_level(Level::Off);
    }

    #[test]
    fn snapshot_lists_registered_metrics_sorted() {
        let _g = serial();
        set_level(Level::Metrics);
        counter("test.snap.b").add(1);
        counter("test.snap.a").add(1);
        let names: Vec<String> = snapshot_all()
            .iter()
            .map(|m| m.name().to_string())
            .collect();
        let a = names.iter().position(|n| n == "test.snap.a").unwrap();
        let b = names.iter().position(|n| n == "test.snap.b").unwrap();
        assert!(a < b);
        set_level(Level::Off);
    }

    #[test]
    #[should_panic(expected = "is not a counter")]
    fn type_confusion_panics() {
        let _ = histogram("test.confused");
        let _ = counter("test.confused");
    }

    #[test]
    fn reset_zeroes_but_keeps_handles() {
        let _g = serial();
        set_level(Level::Metrics);
        let c = counter("test.reset.c");
        c.add(3);
        reset_all();
        assert_eq!(c.get(), 0);
        c.add(2);
        assert_eq!(c.get(), 2);
        set_level(Level::Off);
    }
}
