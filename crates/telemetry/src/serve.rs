//! Dependency-free live metrics endpoint.
//!
//! [`serve`] binds a `std::net::TcpListener` and answers plain HTTP/1.1 on
//! a background thread:
//!
//! * `GET /metrics` — every registered counter/gauge/histogram in the
//!   Prometheus text exposition format (version 0.0.4). Metric names have
//!   `.` mapped to `_` (`exchange.compress_ns` → `exchange_compress_ns`);
//!   histograms expose their native log₂ buckets as cumulative
//!   `_bucket{le="…"}` series plus `_sum` and `_count`.
//! * `GET /health` — a compact JSON view of the `health.*` series written
//!   by `grace-core`'s `HealthMonitor`: overall status plus the latest
//!   gauge values and anomaly counters.
//! * `GET /` — a one-line index pointing at the two routes.
//!
//! The endpoint is opt-in (`GRACE_METRICS_ADDR` or
//! `TrainConfig::metrics_addr` in `grace-core`) and costs the training hot
//! path nothing: scraping snapshots the lock-free registry on the server
//! thread; no instrumentation site ever blocks on, or even knows about, the
//! listener. When nothing scrapes, the server thread sleeps in `accept`.

use crate::metrics::{self, MetricSnapshot, BUCKETS};
use std::fmt::Write as _;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Maps a registry metric name onto the Prometheus name grammar
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): `.` and any other invalid character become
/// `_`, and a leading digit is prefixed with `_`.
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else if ok {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

fn push_prom_f64(out: &mut String, v: f64) {
    if v.is_nan() {
        out.push_str("NaN");
    } else if v == f64::INFINITY {
        out.push_str("+Inf");
    } else if v == f64::NEG_INFINITY {
        out.push_str("-Inf");
    } else {
        let _ = write!(out, "{v}");
    }
}

/// Renders metric snapshots in the Prometheus text exposition format
/// (version 0.0.4).
///
/// Histograms use the registry's log₂ bucket layout: bucket 0 (zeros) maps
/// to `le="0"`, bucket `i ≥ 1` (values in `[2^(i−1), 2^i)`) to
/// `le="2^i − 1"`, emitted cumulatively up to the highest populated bucket
/// and closed with the mandatory `le="+Inf"` series.
pub fn prometheus_text(snaps: &[MetricSnapshot]) -> String {
    let mut out = String::with_capacity(snaps.len() * 96);
    for snap in snaps {
        let name = prometheus_name(snap.name());
        match snap {
            MetricSnapshot::Counter { value, .. } => {
                let _ = write!(out, "# TYPE {name} counter\n{name} {value}\n");
            }
            MetricSnapshot::Gauge { value, .. } => {
                let _ = write!(out, "# TYPE {name} gauge\n{name} ");
                push_prom_f64(&mut out, *value);
                out.push('\n');
            }
            MetricSnapshot::Histogram { hist, .. } => {
                let _ = writeln!(out, "# TYPE {name} histogram");
                let buckets = hist.buckets();
                let top = buckets.iter().rposition(|&n| n > 0).unwrap_or(0);
                let mut cumulative = 0u64;
                for (i, &n) in buckets.iter().enumerate().take(top + 1) {
                    cumulative += n;
                    // The last bucket absorbs everything; it has no finite
                    // upper bound and is covered by +Inf below.
                    if i == BUCKETS - 1 {
                        break;
                    }
                    let le = if i == 0 { 0 } else { (1u64 << i) - 1 };
                    let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
                }
                let _ = write!(
                    out,
                    "{name}_bucket{{le=\"+Inf\"}} {}\n{name}_sum {}\n{name}_count {}\n",
                    hist.count(),
                    hist.sum(),
                    hist.count()
                );
            }
        }
    }
    out
}

/// One parsed exposition sample (see [`parse_exposition`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Sample name, including any `_bucket`/`_sum`/`_count` suffix.
    pub name: String,
    /// Label pairs in source order (empty for unlabelled samples).
    pub labels: Vec<(String, String)>,
    /// Sample value (`NaN`/`±Inf` literals are honoured).
    pub value: f64,
}

impl Sample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

fn parse_prom_value(s: &str) -> Result<f64, String> {
    match s {
        "NaN" => Ok(f64::NAN),
        "+Inf" | "Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        _ => s
            .parse::<f64>()
            .map_err(|e| format!("bad value {s:?}: {e}")),
    }
}

/// Parses Prometheus text exposition (the subset [`prometheus_text`]
/// emits: comments, `name value`, and `name{k="v",…} value` lines) back
/// into samples. Tests use this to round-trip a scrape against the
/// registry snapshot it came from.
pub fn parse_exposition(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (head, value) = match line.find('{') {
            Some(_) => {
                let close = line
                    .rfind('}')
                    .ok_or_else(|| format!("unclosed labels in {line:?}"))?;
                (&line[..close + 1], line[close + 1..].trim())
            }
            None => {
                let sp = line
                    .find(|c: char| c.is_ascii_whitespace())
                    .ok_or_else(|| format!("no value in {line:?}"))?;
                (&line[..sp], line[sp..].trim())
            }
        };
        let (name, labels) = match head.find('{') {
            Some(brace) => {
                let body = &head[brace + 1..head.len() - 1];
                let mut labels = Vec::new();
                for pair in body.split(',').filter(|p| !p.trim().is_empty()) {
                    let eq = pair
                        .find('=')
                        .ok_or_else(|| format!("bad label pair {pair:?}"))?;
                    let key = pair[..eq].trim().to_string();
                    let raw = pair[eq + 1..].trim();
                    let val = raw
                        .strip_prefix('"')
                        .and_then(|r| r.strip_suffix('"'))
                        .ok_or_else(|| format!("unquoted label value {raw:?}"))?;
                    labels.push((key, val.replace("\\\"", "\"").replace("\\\\", "\\")));
                }
                (head[..brace].to_string(), labels)
            }
            None => (head.to_string(), Vec::new()),
        };
        samples.push(Sample {
            name,
            labels,
            value: parse_prom_value(value)?,
        });
    }
    Ok(samples)
}

fn escape_json_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Renders the `/health` JSON document from metric snapshots: overall
/// status (`"alert"` while the monitor's `health.tripped` gauge is
/// nonzero, `"ok"` otherwise), the total anomaly count, and every
/// `health.*` series by name.
pub fn health_json(snaps: &[MetricSnapshot]) -> String {
    let mut tripped = 0.0f64;
    let mut anomalies = 0u64;
    for snap in snaps {
        match snap {
            MetricSnapshot::Gauge { name, value } if name == "health.tripped" => tripped = *value,
            MetricSnapshot::Counter { name, value } if name == "health.anomalies_total" => {
                anomalies = *value
            }
            _ => {}
        }
    }
    let mut out = String::from("{\"status\":\"");
    out.push_str(if tripped > 0.0 { "alert" } else { "ok" });
    let _ = write!(
        out,
        "\",\"recorder\":{{\"active\":{},\"tripped\":{}}}",
        crate::recorder::active(),
        crate::recorder::tripped()
    );
    let _ = write!(out, ",\"anomalies_total\":{anomalies},\"series\":{{");
    let mut first = true;
    for snap in snaps {
        if !snap.name().starts_with("health.") {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push('"');
        escape_json_into(&mut out, snap.name());
        out.push_str("\":");
        match snap {
            MetricSnapshot::Counter { value, .. } => {
                let _ = write!(out, "{value}");
            }
            MetricSnapshot::Gauge { value, .. } => push_json_f64(&mut out, *value),
            MetricSnapshot::Histogram { hist, .. } => {
                let _ = write!(out, "{}", hist.count());
            }
        }
    }
    out.push_str("}}");
    out
}

fn write_response(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    let header = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn handle_connection(mut stream: TcpStream) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain the headers so well-behaved clients see a clean close.
    let mut header = String::new();
    while reader.read_line(&mut header)? > 2 {
        header.clear();
    }
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let path = path.split(['?', '#']).next().unwrap_or("");
    if method != "GET" {
        return write_response(
            &mut stream,
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n",
        );
    }
    match path {
        "/metrics" => {
            let body = prometheus_text(&metrics::snapshot_all());
            write_response(
                &mut stream,
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            )
        }
        "/health" => {
            let body = health_json(&metrics::snapshot_all());
            write_response(&mut stream, "200 OK", "application/json", &body)
        }
        "/" => write_response(
            &mut stream,
            "200 OK",
            "text/plain; charset=utf-8",
            "grace metrics endpoint: GET /metrics (Prometheus 0.0.4) or GET /health (JSON)\n",
        ),
        _ => write_response(
            &mut stream,
            "404 Not Found",
            "text/plain; charset=utf-8",
            "unknown path; try /metrics or /health\n",
        ),
    }
}

/// A running metrics endpoint. Dropping it shuts the server down (the
/// listener is woken with a loopback connection and the thread joined).
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept; an ignored error just means the
        // listener already went away.
        if let Ok(mut s) = TcpStream::connect(self.addr) {
            let _ = s.write_all(b"");
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:9184"`; port 0 picks an ephemeral port)
/// and serves `/metrics` + `/health` from a background thread until the
/// returned [`MetricsServer`] is dropped.
pub fn serve(addr: &str) -> io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("grace-metrics".to_string())
        .spawn(move || {
            for conn in listener.incoming() {
                if stop_flag.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = conn {
                    // A slow or broken scraper must never take the server
                    // down; per-connection errors are dropped.
                    let _ = handle_connection(stream);
                }
            }
        })?;
    Ok(MetricsServer {
        addr: local,
        stop,
        handle: Some(handle),
    })
}

/// Starts the endpoint if `GRACE_METRICS_ADDR` is set and non-empty.
/// A bind failure is reported on stderr but never aborts the training run.
pub fn serve_from_env() -> Option<MetricsServer> {
    let addr = std::env::var("GRACE_METRICS_ADDR").ok()?;
    let addr = addr.trim();
    if addr.is_empty() {
        return None;
    }
    match serve(addr) {
        Ok(server) => Some(server),
        Err(e) => {
            eprintln!("[grace-telemetry] cannot bind metrics endpoint {addr}: {e}");
            None
        }
    }
}

/// Issues a plain-HTTP GET against a [`serve`]d endpoint and returns the
/// response body. Test/CI helper — real deployments point Prometheus or
/// `curl` at the endpoint instead.
pub fn scrape(addr: SocketAddr, path: &str) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let req = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(req.as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or(response);
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Histogram;

    fn sample_snaps() -> Vec<MetricSnapshot> {
        let mut hist = Histogram::new();
        for v in [0u64, 1, 3, 9, 1000] {
            hist.record(v);
        }
        vec![
            MetricSnapshot::Counter {
                name: "traffic.bytes_total".to_string(),
                value: 41,
            },
            MetricSnapshot::Gauge {
                name: "exchange.overlap_ratio".to_string(),
                value: 0.75,
            },
            MetricSnapshot::Histogram {
                name: "exchange.compress_ns".to_string(),
                hist: Box::new(hist),
            },
        ]
    }

    #[test]
    fn names_are_sanitized() {
        assert_eq!(
            prometheus_name("traffic.bytes_total"),
            "traffic_bytes_total"
        );
        assert_eq!(
            prometheus_name("exchange.encode_ns.lane0"),
            "exchange_encode_ns_lane0"
        );
        assert_eq!(prometheus_name("7seas"), "_7seas");
    }

    #[test]
    fn exposition_round_trips() {
        let text = prometheus_text(&sample_snaps());
        let samples = parse_exposition(&text).expect("parse own output");
        let ctr = samples
            .iter()
            .find(|s| s.name == "traffic_bytes_total")
            .unwrap();
        assert_eq!(ctr.value, 41.0);
        let gauge = samples
            .iter()
            .find(|s| s.name == "exchange_overlap_ratio")
            .unwrap();
        assert_eq!(gauge.value, 0.75);
        let count = samples
            .iter()
            .find(|s| s.name == "exchange_compress_ns_count")
            .unwrap();
        assert_eq!(count.value, 5.0);
        let sum = samples
            .iter()
            .find(|s| s.name == "exchange_compress_ns_sum")
            .unwrap();
        assert_eq!(sum.value, 1013.0);
        // Cumulative buckets: le="0" holds the single zero; +Inf holds all.
        let b0 = samples
            .iter()
            .find(|s| s.name == "exchange_compress_ns_bucket" && s.label("le") == Some("0"))
            .unwrap();
        assert_eq!(b0.value, 1.0);
        let inf = samples
            .iter()
            .find(|s| s.name == "exchange_compress_ns_bucket" && s.label("le") == Some("+Inf"))
            .unwrap();
        assert_eq!(inf.value, 5.0);
        // Monotone non-decreasing cumulative counts.
        let mut last = 0.0;
        for s in samples
            .iter()
            .filter(|s| s.name == "exchange_compress_ns_bucket")
        {
            assert!(s.value >= last, "buckets must be cumulative");
            last = s.value;
        }
    }

    #[test]
    fn health_json_reports_status() {
        let calm = health_json(&[MetricSnapshot::Gauge {
            name: "health.tripped".to_string(),
            value: 0.0,
        }]);
        let doc = crate::json::parse(&calm).unwrap();
        assert_eq!(doc.get("status").unwrap().as_str(), Some("ok"));

        let alert = health_json(&[
            MetricSnapshot::Gauge {
                name: "health.tripped".to_string(),
                value: 1.0,
            },
            MetricSnapshot::Counter {
                name: "health.anomalies_total".to_string(),
                value: 3,
            },
        ]);
        let doc = crate::json::parse(&alert).unwrap();
        assert_eq!(doc.get("status").unwrap().as_str(), Some("alert"));
        assert_eq!(doc.get("anomalies_total").unwrap().as_f64(), Some(3.0));
        assert_eq!(
            doc.get("series")
                .unwrap()
                .get("health.tripped")
                .unwrap()
                .as_f64(),
            Some(1.0)
        );
    }

    #[test]
    fn server_serves_and_shuts_down() {
        let server = serve("127.0.0.1:0").expect("bind ephemeral");
        let addr = server.local_addr();
        let body = scrape(addr, "/").expect("scrape index");
        assert!(body.contains("/metrics"));
        let health = scrape(addr, "/health").expect("scrape health");
        crate::json::parse(&health).expect("health is JSON");
        let missing = scrape(addr, "/nope").expect("scrape 404");
        assert!(missing.contains("unknown path"));
        drop(server);
        // The port is released after drop: a fresh bind to it succeeds or
        // at minimum connecting no longer reaches a responder.
        assert!(TcpStream::connect(addr).is_err() || serve("127.0.0.1:0").is_ok());
    }
}
