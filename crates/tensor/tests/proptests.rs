//! Property-based tests for the tensor substrate's invariants.

use grace_tensor::coding::HuffmanCode;
use grace_tensor::linalg::{matmul, matmul_transpose_a, matmul_transpose_b, transpose};
use grace_tensor::pack::{pack_bits, packed_len, unpack_bits};
use grace_tensor::select::{desparsify, sparsify, top_k_indices};
use grace_tensor::sketch::GkSketch;
use grace_tensor::Tensor;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pack_length_formula_is_exact(
        values in proptest::collection::vec(0u32..256, 0..200),
        bits in 8u32..=8,
    ) {
        let packed = pack_bits(&values, bits);
        prop_assert_eq!(packed.len(), packed_len(values.len(), bits));
        prop_assert_eq!(unpack_bits(&packed, bits, values.len()), values);
    }

    #[test]
    fn topk_keeps_the_heaviest_mass(
        data in proptest::collection::vec(-100.0f32..100.0, 1..150),
        k_frac in 0.1f64..1.0,
    ) {
        let k = ((data.len() as f64 * k_frac) as usize).clamp(1, data.len());
        let idx = top_k_indices(&data, k);
        prop_assert_eq!(idx.len(), k);
        // The kept mass is at least k/d of the total absolute mass (the
        // heaviest k elements can't carry less than the average share).
        let kept: f32 = idx.iter().map(|&i| data[i as usize].abs()).sum();
        let total: f32 = data.iter().map(|v| v.abs()).sum();
        prop_assert!(kept + 1e-4 >= total * (k as f32 / data.len() as f32) - 1e-4);
    }

    #[test]
    fn sparsify_preserves_selected_mass(
        data in proptest::collection::vec(-10.0f32..10.0, 1..100),
        k_frac in 0.0f64..1.0,
    ) {
        let t = Tensor::from_vec(data.clone());
        let k = ((data.len() as f64 * k_frac) as usize).min(data.len());
        let idx = top_k_indices(&data, k);
        let sel = sparsify(&t, idx);
        let restored = desparsify(&sel);
        // desparsify(sparsify(x)) never adds mass.
        prop_assert!(restored.norm1() <= t.norm1() + 1e-3);
        prop_assert_eq!(restored.norm0().min(k), restored.norm0());
    }

    #[test]
    fn matmul_transposes_agree(
        a in proptest::collection::vec(-5.0f32..5.0, 12),
        b in proptest::collection::vec(-5.0f32..5.0, 12),
    ) {
        // A: 3x4, B: 3x4. Aᵀ·B via helper == via explicit transpose.
        let direct = matmul_transpose_a(&a, &b, 3, 4, 4);
        let at = transpose(&a, 3, 4);
        let explicit = matmul(&at, &b, 4, 3, 4);
        for (x, y) in direct.iter().zip(&explicit) {
            prop_assert!((x - y).abs() < 1e-3);
        }
        // A·Bᵀ via helper == via explicit transpose (A: 3x4, B: 3x4 -> 3x3).
        let direct2 = matmul_transpose_b(&a, &b, 3, 4, 3);
        let bt = transpose(&b, 3, 4);
        let explicit2 = matmul(&a, &bt, 3, 4, 3);
        for (x, y) in direct2.iter().zip(&explicit2) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn gk_sketch_rank_error_is_bounded(
        mut values in proptest::collection::vec(-1000.0f32..1000.0, 50..400),
    ) {
        let eps = 0.05;
        let mut sk = GkSketch::new(eps);
        sk.extend_from_slice(&values);
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = values.len();
        for &q in &[0.25f64, 0.5, 0.75] {
            let est = sk.quantile(q);
            let rank = values.partition_point(|v| *v < est);
            let target = q * n as f64;
            prop_assert!(
                (rank as f64 - target).abs() <= (2.0 * eps * n as f64) + 2.0,
                "q={q}: rank {rank} vs target {target} (n={n})"
            );
        }
    }

    #[test]
    fn huffman_never_expands_past_fixed_width_plus_header(
        symbols in proptest::collection::vec(0u32..16, 1..500),
    ) {
        let (lengths, bits, nbits) = HuffmanCode::encode_stream(&symbols, 16);
        prop_assert_eq!(HuffmanCode::decode_stream(&lengths, &bits, symbols.len()), symbols.clone());
        // Optimal prefix code over a 16-symbol alphabet never needs more
        // than 15 bits per symbol.
        prop_assert!(nbits <= 15 * symbols.len() as u64);
        prop_assert!(bits.len() as u64 <= nbits.div_ceil(8));
    }

    #[test]
    fn tensor_norm_inequalities_hold(
        data in proptest::collection::vec(-50.0f32..50.0, 1..100),
    ) {
        let t = Tensor::from_vec(data);
        let d = t.len() as f32;
        // ‖x‖∞ ≤ ‖x‖₂ ≤ ‖x‖₁ ≤ √d·‖x‖₂ ≤ d·‖x‖∞
        prop_assert!(t.norm_inf() <= t.norm2() + 1e-3);
        prop_assert!(t.norm2() <= t.norm1() + 1e-2);
        prop_assert!(t.norm1() <= d.sqrt() * t.norm2() + 1e-1);
    }
}
