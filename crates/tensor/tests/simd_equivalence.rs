//! SIMD-vs-scalar bit-identity equivalence suite.
//!
//! Every kernel in `grace_tensor::simd` promises that its vector paths are
//! **bit identical** to the portable scalar body on all inputs. This suite
//! enforces that promise with seeded property tests that sweep:
//!
//! * every level the CPU can execute (via `available_levels()`, which
//!   ignores `GRACE_FORCE_SCALAR` — so the CI forced-scalar run still
//!   cross-checks the vector bodies);
//! * unaligned lengths around every lane and block boundary (0, 1, lane−1,
//!   lane, lane+1 for the 4/8/16/32-element kernel blocks) plus
//!   MTU-straddling sizes (±1 around 375 f32s = 1500 bytes and around 1500
//!   elements);
//! * adversarial float bit patterns — NaN, ±∞, ±0, denormals, extreme
//!   magnitudes — injected into otherwise-random IEEE-754 words;
//! * all 32 bit-pack widths against the generic bit-cursor reference.
//!
//! Inputs are raw `u32` words reinterpreted with `from_bits`, so the float
//! space is sampled uniformly over *encodings* (heavy on denormals and NaN
//! payloads), not just over values. All comparisons are on bit patterns.

use grace_tensor::pack::{
    pack_bits, pack_bits_generic, packed_len, unpack_bits_generic_into, unpack_bits_into,
};
use grace_tensor::select::{top_k_indices, top_k_indices_with};
use grace_tensor::simd::{self, available_levels, Level};
use proptest::prelude::*;

/// Lengths that straddle every vector-kernel boundary: the f32 lane counts
/// (4 SSE2, 8 AVX2), the byte-kernel block sizes (16, 32), and MTU-sized
/// frames (1500 bytes = 375 f32s, and 1500 elements).
fn boundary_lengths() -> Vec<usize> {
    let mut out = vec![0, 1];
    for lane in [4usize, 8, 16, 32] {
        out.extend([lane - 1, lane, lane + 1]);
    }
    out.extend([374, 375, 376, 1499, 1500, 1501]);
    out
}

/// The largest boundary length; the word pools are generated at this size
/// and sliced down.
const MAX_LEN: usize = 1501;

/// Adversarial IEEE-754 encodings: ±0, NaNs (quiet and payload-carrying),
/// ±∞, the smallest/largest denormals, the smallest normal, and both
/// extremes of the finite range.
const TRICKY_BITS: [u32; 14] = [
    0x0000_0000, // +0.0
    0x8000_0000, // -0.0
    0x7FC0_0000, // canonical quiet NaN
    0xFFC0_0001, // negative NaN with payload
    0x7F80_0000, // +inf
    0xFF80_0000, // -inf
    0x0000_0001, // smallest positive denormal
    0x8000_0001, // smallest negative denormal
    0x007F_FFFF, // largest denormal
    0x0080_0000, // f32::MIN_POSITIVE
    0x7F7F_FFFF, // f32::MAX
    0xFF7F_FFFF, // f32::MIN
    0x3F80_0000, // 1.0
    0xBF80_0000, // -1.0
];

/// Reinterprets a word slice as floats, splicing the tricky encodings in at
/// a generated stride so every boundary length sees some of them.
fn floats_with_tricky(words: &[u32], salt: usize) -> Vec<f32> {
    let mut out: Vec<f32> = words.iter().map(|&w| f32::from_bits(w)).collect();
    let n = out.len();
    for (j, &bits) in TRICKY_BITS.iter().enumerate() {
        if n > 0 {
            out[(salt + j * 5) % n] = f32::from_bits(bits);
        }
    }
    out
}

/// Bit patterns of a float slice (the only comparison this suite makes).
fn bits_of(xs: &[f32]) -> Vec<u32> {
    xs.iter().map(|v| v.to_bits()).collect()
}

/// A sorted 128-entry non-negative finite code-book built from random words
/// (sign and exponent MSB masked off keeps every entry finite and ≥ 0).
fn codebook(words: &[u32]) -> Vec<f32> {
    let mut table: Vec<f32> = words
        .iter()
        .take(128)
        .map(|&w| f32::from_bits(w & 0x3FFF_FFFF))
        .collect();
    table.resize(128, 0.0);
    table.sort_by(|a, b| a.partial_cmp(b).expect("masked entries are finite"));
    table
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn abs_kernels_bit_identical_across_levels(
        words in proptest::collection::vec(any::<u32>(), MAX_LEN),
        salt in 0usize..1000,
    ) {
        let pool = floats_with_tricky(&words, salt);
        for len in boundary_lengths() {
            let xs = &pool[..len];
            let want_max = simd::abs_max_bits_at(Level::Scalar, xs);
            let mut want_bits = vec![0u32; len];
            simd::abs_bits_into_at(Level::Scalar, xs, &mut want_bits);
            for lvl in available_levels() {
                prop_assert_eq!(
                    simd::abs_max_bits_at(lvl, xs),
                    want_max,
                    "abs_max_bits {} len {}",
                    lvl,
                    len
                );
                let mut got = vec![0u32; len];
                simd::abs_bits_into_at(lvl, xs, &mut got);
                prop_assert_eq!(&got, &want_bits, "abs_bits_into {} len {}", lvl, len);
            }
        }
    }

    #[test]
    fn axpy_bit_identical_across_levels(
        xw in proptest::collection::vec(any::<u32>(), MAX_LEN),
        yw in proptest::collection::vec(any::<u32>(), MAX_LEN),
        aw in any::<u32>(),
        salt in 0usize..1000,
    ) {
        let x = floats_with_tricky(&xw, salt);
        let y0 = floats_with_tricky(&yw, salt.wrapping_add(7));
        let a = f32::from_bits(aw);
        for len in boundary_lengths() {
            let mut want = y0[..len].to_vec();
            simd::axpy_at(Level::Scalar, &mut want, a, &x[..len]);
            for lvl in available_levels() {
                let mut got = y0[..len].to_vec();
                simd::axpy_at(lvl, &mut got, a, &x[..len]);
                prop_assert_eq!(
                    bits_of(&got),
                    bits_of(&want),
                    "axpy {} len {} a {:#010x}",
                    lvl,
                    len,
                    aw
                );
            }
        }
    }

    #[test]
    fn quantize_dequant_bit_identical_across_levels(
        tw in proptest::collection::vec(any::<u32>(), 128),
        xw in proptest::collection::vec(any::<u32>(), MAX_LEN),
        invw in any::<u32>(),
        salt in 0usize..1000,
        small_n in 1usize..=127,
    ) {
        let table = codebook(&tw);
        let xs = floats_with_tricky(&xw, salt);
        // Any encoding is a valid scale: the kernels must agree even when
        // `inv` is NaN or infinite (the comparisons then all fail the same
        // way in every lane).
        let inv = f32::from_bits(invw);
        for len in boundary_lengths() {
            let mut want = vec![0u32; len];
            simd::quantize_sign_mag_at(Level::Scalar, &table, &xs[..len], inv, &mut want);
            let mut want_dec = vec![0f32; len];
            simd::dequant_sign_mag_at(Level::Scalar, &table, &want, 1.75, &mut want_dec);
            let mut want_acc = xs[..len].to_vec();
            simd::dequant_sign_mag_add_at(Level::Scalar, &table, &want, -0.5, &mut want_acc);
            for lvl in available_levels() {
                let mut got = vec![0u32; len];
                simd::quantize_sign_mag_at(lvl, &table, &xs[..len], inv, &mut got);
                prop_assert_eq!(&got, &want, "quantize {} len {}", lvl, len);
                let mut dec = vec![0f32; len];
                simd::dequant_sign_mag_at(lvl, &table, &got, 1.75, &mut dec);
                prop_assert_eq!(bits_of(&dec), bits_of(&want_dec), "dequant {} len {}", lvl, len);
                let mut acc = xs[..len].to_vec();
                simd::dequant_sign_mag_add_at(lvl, &table, &got, -0.5, &mut acc);
                prop_assert_eq!(
                    bits_of(&acc),
                    bits_of(&want_acc),
                    "dequant_add {} len {}",
                    lvl,
                    len
                );
            }
        }
        // The 128-entry code-book takes a specialized AVX2 path; any other
        // size goes through the generic gather loop. Cover both.
        let small = &table[..small_n];
        for len in boundary_lengths() {
            let mut want = vec![0u32; len];
            simd::quantize_sign_mag_at(Level::Scalar, small, &xs[..len], inv, &mut want);
            for lvl in available_levels() {
                let mut got = vec![0u32; len];
                simd::quantize_sign_mag_at(lvl, small, &xs[..len], inv, &mut got);
                prop_assert_eq!(&got, &want, "quantize {} table {} len {}", lvl, small_n, len);
            }
        }
    }

    #[test]
    fn byte_narrow_widen_bit_identical_across_levels(
        words in proptest::collection::vec(any::<u32>(), MAX_LEN),
    ) {
        for len in boundary_lengths() {
            let vals = &words[..len];
            let mut want = vec![0u8; len];
            simd::narrow_to_bytes_at(Level::Scalar, vals, &mut want);
            let mut want_wide = vec![0u32; len];
            simd::widen_from_bytes_at(Level::Scalar, &want, &mut want_wide);
            for lvl in available_levels() {
                let mut got = vec![0u8; len];
                simd::narrow_to_bytes_at(lvl, vals, &mut got);
                prop_assert_eq!(&got, &want, "narrow {} len {}", lvl, len);
                let mut wide = vec![0u32; len];
                simd::widen_from_bytes_at(lvl, &got, &mut wide);
                prop_assert_eq!(&wide, &want_wide, "widen {} len {}", lvl, len);
            }
        }
    }

    #[test]
    fn gather_bit_identical_across_levels(
        srcw in proptest::collection::vec(any::<u32>(), 977),
        idxw in proptest::collection::vec(any::<u32>(), MAX_LEN),
        salt in 0usize..1000,
    ) {
        // NaN/denormal payloads in the source must survive the gather
        // bit-exactly.
        let src = floats_with_tricky(&srcw, salt);
        let indices: Vec<u32> = idxw.iter().map(|&w| w % src.len() as u32).collect();
        for len in boundary_lengths() {
            let mut want = vec![0f32; len];
            simd::gather_f32_at(Level::Scalar, &src, &indices[..len], &mut want);
            for lvl in available_levels() {
                let mut got = vec![0f32; len];
                simd::gather_f32_at(lvl, &src, &indices[..len], &mut got);
                prop_assert_eq!(bits_of(&got), bits_of(&want), "gather {} len {}", lvl, len);
            }
        }
    }

    #[test]
    fn pack_unpack_all_widths_match_generic_reference(
        words in proptest::collection::vec(any::<u32>(), MAX_LEN),
        bits in 1u32..=32,
    ) {
        let mask = if bits == 32 { u32::MAX } else { (1u32 << bits) - 1 };
        for len in boundary_lengths() {
            let vals: Vec<u32> = words[..len].iter().map(|&w| w & mask).collect();
            let fast = pack_bits(&vals, bits);
            prop_assert_eq!(fast.len(), packed_len(len, bits));
            prop_assert_eq!(
                &fast,
                &pack_bits_generic(&vals, bits),
                "pack width {} len {}",
                bits,
                len
            );
            let mut unpacked = Vec::new();
            unpack_bits_into(&fast, bits, len, &mut unpacked);
            let mut reference = Vec::new();
            unpack_bits_generic_into(&fast, bits, len, &mut reference);
            prop_assert_eq!(&unpacked, &reference, "unpack width {} len {}", bits, len);
            prop_assert_eq!(&unpacked, &vals, "roundtrip width {} len {}", bits, len);
        }
    }

    #[test]
    fn top_k_matches_stable_sort_oracle(
        words in proptest::collection::vec(any::<u32>(), MAX_LEN),
        k_frac in 0.0f64..=1.0,
        salt in 0usize..1000,
    ) {
        // Oracle: stable sort of indices by descending abs-value bit
        // pattern. Stability gives lowest-index tie-breaking; the integer
        // key gives a total order that places NaN payloads above +inf —
        // exactly the documented selection contract.
        let pool = floats_with_tricky(&words, salt);
        let mut scratch = Vec::new();
        for len in boundary_lengths() {
            let xs = &pool[..len];
            let k = ((len as f64) * k_frac) as usize;
            let mut order: Vec<u32> = (0..len as u32).collect();
            order.sort_by_key(|&i| std::cmp::Reverse(xs[i as usize].to_bits() & 0x7FFF_FFFF));
            let mut expect: Vec<u32> = order[..k.min(len)].to_vec();
            expect.sort_unstable();
            let got = top_k_indices_with(xs, k, &mut scratch);
            prop_assert_eq!(&got, &expect, "top_k len {} k {}", len, k);
            prop_assert_eq!(&got, &top_k_indices(xs, k), "pooled vs fresh len {}", len);
        }
    }
}

/// The dispatch controls themselves: the forced-scalar escape hatch must
/// constrain `level()` without hiding the vector paths from
/// `available_levels()`.
#[test]
fn dispatch_respects_force_scalar_contract() {
    let avail = available_levels();
    assert_eq!(avail[0], Level::Scalar);
    assert!(avail.contains(&simd::hw_level()));
    assert!(simd::level() <= simd::hw_level());
    let forced = std::env::var_os("GRACE_FORCE_SCALAR").is_some_and(|v| !v.is_empty() && v != *"0");
    if forced {
        assert_eq!(simd::level(), Level::Scalar, "GRACE_FORCE_SCALAR ignored");
    }
}
