//! Small dense linear algebra for low-rank compressors (§III-D).
//!
//! PowerSGD views each gradient tensor as an `m × l` matrix `M`, maintains a
//! rank-`r` sketch via one step of subspace (power) iteration, and transmits
//! the two factors `P = M Q` and `Qᵀ M`. The primitives required are plain
//! matmuls with optional transposes and Gram–Schmidt orthonormalization.
//!
//! Matrices are row-major `&[f32]` buffers with explicit dimensions, matching
//! [`crate::Tensor`] layout so gradients can be viewed without copies.

/// `C (m×n) = A (m×k) · B (k×n)`.
///
/// # Panics
///
/// Panics if buffer sizes do not match the dimensions.
pub fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "A buffer size mismatch");
    assert_eq!(b.len(), k * n, "B buffer size mismatch");
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        for p in 0..k {
            let aip = a[i * k + p];
            if aip == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            let crow = &mut c[i * n..(i + 1) * n];
            // Each output element accumulates exactly one mul + add per p,
            // so the vectorized axpy is bit-identical to the scalar loop.
            crate::simd::axpy(crow, aip, brow);
        }
    }
    c
}

/// `C (k×n) = Aᵀ · B` where `A` is `m×k` and `B` is `m×n`.
///
/// # Panics
///
/// Panics if buffer sizes do not match the dimensions.
pub fn matmul_transpose_a(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "A buffer size mismatch");
    assert_eq!(b.len(), m * n, "B buffer size mismatch");
    let mut c = vec![0.0f32; k * n];
    for row in 0..m {
        let arow = &a[row * k..(row + 1) * k];
        let brow = &b[row * n..(row + 1) * n];
        for i in 0..k {
            let av = arow[i];
            if av == 0.0 {
                continue;
            }
            let crow = &mut c[i * n..(i + 1) * n];
            crate::simd::axpy(crow, av, brow);
        }
    }
    c
}

/// `C (m×k) = A (m×n) · Bᵀ` where `B` is `k×n`.
///
/// # Panics
///
/// Panics if buffer sizes do not match the dimensions.
pub fn matmul_transpose_b(a: &[f32], b: &[f32], m: usize, n: usize, k: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * n, "A buffer size mismatch");
    assert_eq!(b.len(), k * n, "B buffer size mismatch");
    let mut c = vec![0.0f32; m * k];
    for i in 0..m {
        let arow = &a[i * n..(i + 1) * n];
        for j in 0..k {
            let brow = &b[j * n..(j + 1) * n];
            // Deliberately scalar: this is a sequential f32 reduction whose
            // accumulation order is pinned by the PowerSGD payload golden;
            // a lane tree would reassociate the sum and change the bits.
            let mut acc = 0.0f32;
            for p in 0..n {
                acc += arow[p] * brow[p];
            }
            c[i * k + j] = acc;
        }
    }
    c
}

/// Transposes an `m×n` row-major matrix.
pub fn transpose(a: &[f32], m: usize, n: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * n, "buffer size mismatch");
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = a[i * n + j];
        }
    }
    out
}

/// Orthonormalizes the `r` columns of an `m×r` matrix in place via modified
/// Gram–Schmidt (the orthogonalization step of PowerSGD).
///
/// Columns that collapse to (near-)zero norm are replaced with a deterministic
/// unit basis vector so the result always has orthonormal columns when
/// `m >= r`.
pub fn orthonormalize_columns(a: &mut [f32], m: usize, r: usize) {
    assert_eq!(a.len(), m * r, "buffer size mismatch");
    for col in 0..r {
        let mut pre_norm = 0.0f32;
        for row in 0..m {
            pre_norm += a[row * r + col] * a[row * r + col];
        }
        let pre_norm = pre_norm.sqrt();
        // Subtract projections onto previous columns.
        for prev in 0..col {
            let mut dot = 0.0f32;
            for row in 0..m {
                dot += a[row * r + col] * a[row * r + prev];
            }
            for row in 0..m {
                a[row * r + col] -= dot * a[row * r + prev];
            }
        }
        let mut norm = 0.0f32;
        for row in 0..m {
            norm += a[row * r + col] * a[row * r + col];
        }
        let norm = norm.sqrt();
        // A column that collapses under projection (relative to its original
        // magnitude) is linearly dependent: normalizing it would amplify f32
        // cancellation noise into a bogus direction.
        if norm > 1e-4 * pre_norm.max(1e-30) && norm > 1e-12 {
            for row in 0..m {
                a[row * r + col] /= norm;
            }
        } else {
            // Degenerate column: fall back to the col-th unit vector.
            for row in 0..m {
                a[row * r + col] = if row == col % m { 1.0 } else { 0.0 };
            }
            // Re-orthogonalize the fallback against previous columns once.
            for prev in 0..col {
                let mut dot = 0.0f32;
                for row in 0..m {
                    dot += a[row * r + col] * a[row * r + prev];
                }
                for row in 0..m {
                    a[row * r + col] -= dot * a[row * r + prev];
                }
            }
            let mut n2 = 0.0f32;
            for row in 0..m {
                n2 += a[row * r + col] * a[row * r + col];
            }
            let n2 = n2.sqrt().max(1e-8);
            for row in 0..m {
                a[row * r + col] /= n2;
            }
        }
    }
}

/// Frobenius norm of a matrix buffer.
pub fn frobenius_norm(a: &[f32]) -> f32 {
    a.iter().map(|v| v * v).sum::<f32>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = vec![1.0, 2.0, 3.0, 4.0]; // 2x2
        let eye = vec![1.0, 0.0, 0.0, 1.0];
        assert_eq!(matmul(&a, &eye, 2, 2, 2), a);
        assert_eq!(matmul(&eye, &a, 2, 2, 2), a);
    }

    #[test]
    fn matmul_rectangular() {
        // A: 2x3, B: 3x2
        let a = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0];
        let c = matmul(&a, &b, 2, 3, 2);
        assert_eq!(c, vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transposed_matmuls_agree_with_explicit_transpose() {
        let a = vec![1.0, -2.0, 0.5, 3.0, 4.0, -1.0]; // 3x2
        let b = vec![2.0, 0.0, 1.0, -1.0, 0.5, 2.0]; // 3x2
        let at = transpose(&a, 3, 2);
        let expect = matmul(&at, &b, 2, 3, 2);
        assert_eq!(matmul_transpose_a(&a, &b, 3, 2, 2), expect);

        let bt = transpose(&b, 3, 2);
        let expect2 = matmul(&a, &bt, 3, 2, 3);
        // a: 3x2 times bᵀ: 2x3 -> 3x3; matmul_transpose_b takes (m,n,k)=(3,2,3)
        assert_eq!(matmul_transpose_b(&a, &b, 3, 2, 3), expect2);
    }

    #[test]
    fn transpose_roundtrip() {
        let a: Vec<f32> = (0..12).map(|i| i as f32).collect();
        assert_eq!(transpose(&transpose(&a, 3, 4), 4, 3), a);
    }

    #[test]
    fn gram_schmidt_produces_orthonormal_columns() {
        let mut a = vec![
            1.0, 1.0, //
            1.0, 0.0, //
            0.0, 1.0, //
            2.0, -1.0,
        ]; // 4x2
        orthonormalize_columns(&mut a, 4, 2);
        let mut dot01 = 0.0;
        let mut n0 = 0.0;
        let mut n1 = 0.0;
        for row in 0..4 {
            dot01 += a[row * 2] * a[row * 2 + 1];
            n0 += a[row * 2] * a[row * 2];
            n1 += a[row * 2 + 1] * a[row * 2 + 1];
        }
        assert!(dot01.abs() < 1e-5);
        assert!((n0 - 1.0).abs() < 1e-5);
        assert!((n1 - 1.0).abs() < 1e-5);
    }

    #[test]
    fn gram_schmidt_handles_degenerate_columns() {
        // Second column is a multiple of the first.
        let mut a = vec![
            1.0, 2.0, //
            0.0, 0.0, //
            0.0, 0.0,
        ]; // 3x2
        orthonormalize_columns(&mut a, 3, 2);
        let mut dot01 = 0.0;
        let mut n1 = 0.0;
        for row in 0..3 {
            dot01 += a[row * 2] * a[row * 2 + 1];
            n1 += a[row * 2 + 1] * a[row * 2 + 1];
        }
        assert!(dot01.abs() < 1e-5, "columns not orthogonal: {dot01}");
        assert!((n1 - 1.0).abs() < 1e-5, "second column not unit: {n1}");
    }

    #[test]
    fn frobenius() {
        assert_eq!(frobenius_norm(&[3.0, 4.0]), 5.0);
        assert_eq!(frobenius_norm(&[]), 0.0);
    }
}
