//! Streaming statistics used by the evaluation harness (throughput, latency
//! distributions) and by adaptive compressors.

/// Welford online mean/variance accumulator.
///
/// # Example
///
/// ```
/// use grace_tensor::stats::Running;
///
/// let mut r = Running::new();
/// for v in [1.0, 2.0, 3.0] {
///     r.push(v);
/// }
/// assert_eq!(r.mean(), 2.0);
/// assert_eq!(r.variance(), 1.0); // sample variance
/// ```
#[derive(Debug, Clone, Default)]
pub struct Running {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Running {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Running {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (+∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Running) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exact percentile of a sample by sorting a copy (nearest-rank method).
///
/// Returns 0 for an empty slice.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]`.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0,100]");
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_accumulator() {
        let r = Running::new();
        assert_eq!(r.count(), 0);
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.variance(), 0.0);
    }

    #[test]
    fn mean_variance_min_max() {
        let mut r = Running::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            r.push(v);
        }
        assert!((r.mean() - 5.0).abs() < 1e-12);
        assert!((r.variance() - 32.0 / 7.0).abs() < 1e-9);
        assert_eq!(r.min(), 2.0);
        assert_eq!(r.max(), 9.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 3.0).collect();
        let mut whole = Running::new();
        for &v in &data {
            whole.push(v);
        }
        let mut a = Running::new();
        let mut b = Running::new();
        for &v in &data[..37] {
            a.push(v);
        }
        for &v in &data[37..] {
            b.push(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Running::new();
        a.push(1.0);
        let before = a.mean();
        a.merge(&Running::new());
        assert_eq!(a.mean(), before);
        let mut e = Running::new();
        e.merge(&a);
        assert_eq!(e.mean(), before);
    }

    #[test]
    fn percentiles() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        let med = percentile(&v, 50.0);
        assert!((50.0..=51.0).contains(&med));
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn percentile_rejects_out_of_range() {
        let _ = percentile(&[1.0], 150.0);
    }
}
