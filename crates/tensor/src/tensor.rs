//! The dense `f32` tensor type.

use crate::shape::Shape;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense `f32` tensor: a contiguous value buffer plus a [`Shape`].
///
/// Gradients, parameters and compressor outputs throughout the workspace are
/// `Tensor`s. The layout is row-major.
///
/// # Example
///
/// ```
/// use grace_tensor::{Shape, Tensor};
///
/// let mut t = Tensor::zeros(Shape::vector(3));
/// t.as_mut_slice()[1] = 2.0;
/// assert_eq!(t.as_slice(), &[0.0, 2.0, 0.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// Creates a tensor from a raw buffer and a shape.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != shape.len()`.
    pub fn new(data: Vec<f32>, shape: Shape) -> Self {
        assert_eq!(
            data.len(),
            shape.len(),
            "buffer length {} does not match shape {}",
            data.len(),
            shape
        );
        Tensor { data, shape }
    }

    /// Creates a rank-1 tensor from a vector of values.
    pub fn from_vec(data: Vec<f32>) -> Self {
        let shape = Shape::vector(data.len());
        Tensor { data, shape }
    }

    /// Creates a rank-1 tensor by copying a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor::from_vec(data.to_vec())
    }

    /// Creates a tensor of zeros.
    pub fn zeros(shape: Shape) -> Self {
        Tensor {
            data: vec![0.0; shape.len()],
            shape,
        }
    }

    /// Creates a tensor filled with a constant value.
    pub fn filled(shape: Shape, value: f32) -> Self {
        Tensor {
            data: vec![value; shape.len()],
            shape,
        }
    }

    /// Creates a zero tensor with the same shape as `self`.
    pub fn zeros_like(&self) -> Self {
        Tensor::zeros(self.shape.clone())
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Overwrites `self` with the contents and shape of `src`, reusing the
    /// existing buffer capacity when it suffices.
    ///
    /// This is the pooled-staging primitive of the fusion pipeline: once a
    /// staging slot has grown to its steady-state size, repeated `copy_from`
    /// calls perform no allocations.
    pub fn copy_from(&mut self, src: &Tensor) {
        if self.data.len() == src.data.len() {
            self.data.copy_from_slice(&src.data);
        } else {
            self.data.clear();
            self.data.extend_from_slice(&src.data);
        }
        self.shape.clone_from(&src.shape);
    }

    /// Resizes `self` to `shape`, reusing the buffer capacity; element
    /// values after the call are unspecified (callers overwrite every slot).
    ///
    /// The pooled-accumulator primitive of the aggregation merge path: once
    /// the buffer has grown to its steady-state size, repeated `reset_for`
    /// calls perform no allocations.
    pub fn reset_for(&mut self, shape: &Shape) {
        self.data.resize(shape.len(), 0.0);
        self.shape.clone_from(shape);
    }

    /// Immutable view of the underlying buffer (row-major).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns the same buffer under a different shape.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(mut self, shape: Shape) -> Self {
        assert_eq!(
            self.data.len(),
            shape.len(),
            "cannot reshape {} elements into shape {}",
            self.data.len(),
            shape
        );
        self.shape = shape;
        self
    }

    /// Applies `f` to every element, in place.
    pub fn map_inplace<F: FnMut(f32) -> f32>(&mut self, mut f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Returns a new tensor with `f` applied to every element.
    pub fn map<F: FnMut(f32) -> f32>(&self, f: F) -> Self {
        let mut out = self.clone();
        out.map_inplace(f);
        out
    }

    /// Elementwise `self += other`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.len(), other.len(), "tensor length mismatch in add");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// Elementwise `self -= other`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn sub_assign(&mut self, other: &Tensor) {
        assert_eq!(self.len(), other.len(), "tensor length mismatch in sub");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a -= b;
        }
    }

    /// Elementwise `self += alpha * other` (axpy).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.len(), other.len(), "tensor length mismatch in axpy");
        crate::simd::axpy(&mut self.data, alpha, &other.data);
    }

    /// Multiplies every element by `alpha`, in place.
    pub fn scale(&mut self, alpha: f32) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Returns `self + other` as a new tensor.
    pub fn add(&self, other: &Tensor) -> Tensor {
        let mut out = self.clone();
        out.add_assign(other);
        out
    }

    /// Returns `self - other` as a new tensor.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        let mut out = self.clone();
        out.sub_assign(other);
        out
    }

    /// Returns the elementwise product `self ⊙ other` as a new tensor.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn hadamard(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.len(),
            other.len(),
            "tensor length mismatch in hadamard"
        );
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a * b)
            .collect();
        Tensor::new(data, self.shape.clone())
    }

    /// Inner product `<self, other>`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(self.len(), other.len(), "tensor length mismatch in dot");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a * b)
            .sum()
    }

    /// ℓ₀ "norm": the number of non-zero elements (`‖g‖₀` in Table I).
    pub fn norm0(&self) -> usize {
        self.data.iter().filter(|v| **v != 0.0).count()
    }

    /// ℓ₁ norm: sum of absolute values.
    pub fn norm1(&self) -> f32 {
        self.data.iter().map(|v| v.abs()).sum()
    }

    /// Euclidean (ℓ₂) norm.
    pub fn norm2(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// ℓ∞ norm: largest absolute value (0 for an empty tensor).
    ///
    /// Computed as an integer max over absolute-value bit patterns, which is
    /// exact (bit-identical to the float fold on finite data, including
    /// `-0.0`) and vectorizes; see [`crate::simd::abs_max_bits`].
    pub fn norm_inf(&self) -> f32 {
        f32::from_bits(crate::simd::abs_max_bits(&self.data))
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Largest element value (−∞ for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().fold(f32::NEG_INFINITY, |m, v| m.max(*v))
    }

    /// Smallest element value (+∞ for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().fold(f32::INFINITY, |m, v| m.min(*v))
    }

    /// Whether every element is finite (no NaN / ±∞).
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Splits the buffer into value/index pairs of the non-zero elements.
    pub fn nonzero(&self) -> (Vec<f32>, Vec<u32>) {
        let mut values = Vec::new();
        let mut indices = Vec::new();
        for (i, v) in self.data.iter().enumerate() {
            if *v != 0.0 {
                values.push(*v);
                indices.push(i as u32);
            }
        }
        (values, indices)
    }
}

impl Index<usize> for Tensor {
    type Output = f32;

    fn index(&self, i: usize) -> &f32 {
        &self.data[i]
    }
}

impl IndexMut<usize> for Tensor {
    fn index_mut(&mut self, i: usize) -> &mut f32 {
        &mut self.data[i]
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{}", self.shape)?;
        if self.len() <= 8 {
            write!(f, " {:?}", self.data)
        } else {
            write!(
                f,
                " [{:.4}, {:.4}, …, {:.4}]",
                self.data[0],
                self.data[1],
                self.data[self.len() - 1]
            )
        }
    }
}

impl FromIterator<f32> for Tensor {
    fn from_iter<I: IntoIterator<Item = f32>>(iter: I) -> Self {
        Tensor::from_vec(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn new_rejects_mismatched_shape() {
        let _ = Tensor::new(vec![1.0, 2.0], Shape::vector(3));
    }

    #[test]
    fn zeros_and_filled() {
        let z = Tensor::zeros(Shape::matrix(2, 2));
        assert_eq!(z.as_slice(), &[0.0; 4]);
        let f = Tensor::filled(Shape::vector(3), 2.5);
        assert_eq!(f.as_slice(), &[2.5, 2.5, 2.5]);
    }

    #[test]
    fn norms() {
        let t = Tensor::from_vec(vec![3.0, 0.0, -4.0]);
        assert_eq!(t.norm0(), 2);
        assert_eq!(t.norm1(), 7.0);
        assert_eq!(t.norm2(), 5.0);
        assert_eq!(t.norm_inf(), 4.0);
    }

    #[test]
    fn arithmetic() {
        let a = Tensor::from_vec(vec![1.0, 2.0]);
        let b = Tensor::from_vec(vec![3.0, -1.0]);
        assert_eq!(a.add(&b).as_slice(), &[4.0, 1.0]);
        assert_eq!(a.sub(&b).as_slice(), &[-2.0, 3.0]);
        assert_eq!(a.hadamard(&b).as_slice(), &[3.0, -2.0]);
        assert_eq!(a.dot(&b), 1.0);
        let mut c = a.clone();
        c.axpy(2.0, &b);
        assert_eq!(c.as_slice(), &[7.0, 0.0]);
        c.scale(0.5);
        assert_eq!(c.as_slice(), &[3.5, 0.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 4.0, 5.0]);
        assert_eq!(t.sum(), 8.0);
        assert_eq!(t.mean(), 2.0);
        assert_eq!(t.max(), 5.0);
        assert_eq!(t.min(), -2.0);
    }

    #[test]
    fn empty_tensor_reductions_are_safe() {
        let t = Tensor::from_vec(vec![]);
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.norm_inf(), 0.0);
        assert!(t.is_empty());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0]).reshape(Shape::matrix(2, 2));
        assert_eq!(t.shape(), &Shape::matrix(2, 2));
        assert_eq!(t.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "cannot reshape")]
    fn reshape_rejects_wrong_count() {
        let _ = Tensor::from_vec(vec![1.0, 2.0]).reshape(Shape::matrix(2, 2));
    }

    #[test]
    fn nonzero_extraction() {
        let t = Tensor::from_vec(vec![0.0, 1.5, 0.0, -2.0]);
        let (vals, idx) = t.nonzero();
        assert_eq!(vals, vec![1.5, -2.0]);
        assert_eq!(idx, vec![1, 3]);
    }

    #[test]
    fn map_and_indexing() {
        let mut t = Tensor::from_vec(vec![1.0, -1.0]);
        t.map_inplace(f32::abs);
        assert_eq!(t.as_slice(), &[1.0, 1.0]);
        t[0] = 9.0;
        assert_eq!(t[0], 9.0);
        let doubled = t.map(|v| 2.0 * v);
        assert_eq!(doubled[0], 18.0);
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut t = Tensor::from_vec(vec![1.0, 2.0]);
        assert!(t.is_finite());
        t[1] = f32::NAN;
        assert!(!t.is_finite());
    }

    #[test]
    fn copy_from_matches_source_and_reuses_capacity() {
        let src = Tensor::new(vec![1.0, 2.0, 3.0, 4.0], Shape::matrix(2, 2));
        let mut dst = Tensor::zeros(Shape::vector(4));
        dst.copy_from(&src);
        assert_eq!(dst, src);
        let cap = dst.data.capacity();
        let smaller = Tensor::from_vec(vec![9.0, 8.0]);
        dst.copy_from(&smaller);
        assert_eq!(dst, smaller);
        assert_eq!(dst.data.capacity(), cap, "copy_from must not shrink");
    }

    #[test]
    fn from_iterator_collects() {
        let t: Tensor = (0..4).map(|i| i as f32).collect();
        assert_eq!(t.as_slice(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn display_is_nonempty() {
        let t = Tensor::from_vec(vec![1.0; 20]);
        assert!(t.to_string().contains("Tensor"));
        let small = Tensor::from_vec(vec![1.0]);
        assert!(!small.to_string().is_empty());
    }
}
