//! Runtime-dispatched SIMD kernels for the codec hot paths.
//!
//! Every compressor funnels through a handful of primitive loops: the ‖g‖∞
//! scan, code-book binary search, byte-width bit packing, sparse gather, and
//! the axpy-shaped matmul rows of PowerSGD. This module provides those
//! kernels with `core::arch` x86-64 bodies (SSE2 baseline, AVX2 when the CPU
//! reports it) behind one runtime dispatch point, plus a portable scalar
//! fallback used on other architectures and when `GRACE_FORCE_SCALAR` is set.
//!
//! # Bit identity
//!
//! The non-negotiable contract is that every vector path returns **bit
//! identical** results to the scalar path on *all* inputs — including NaN,
//! denormals and ±0 — so compressed payloads, pinned golden checksums and
//! the cross-backend equivalence suites cannot observe which path ran. The
//! kernels achieve this by construction:
//!
//! * integer and comparison kernels (`abs_bits`, packing, selection) are
//!   exact in any evaluation order;
//! * floating-point kernels vectorize across *independent output elements*
//!   only — each lane performs the same `mul`/`add`/`sub`/`cmp` sequence as
//!   one scalar iteration, and FMA is never used (fused rounding differs
//!   from `mul` + `add`);
//! * reductions that would need a lane-reassociated tree (`dot`, the f32
//!   sum) are deliberately **not** vectorized here — their sequential
//!   accumulation order is pinned by golden checksums;
//! * the max-reduction in [`abs_max_bits`] operates on absolute-value *bit
//!   patterns* (sign bit cleared, compared as integers), which is
//!   associative and exact, so the lane-parallel tree equals the scalar
//!   left fold bit-for-bit.
//!
//! Each kernel is also exposed as an `*_at(Level, …)` variant so the
//! equivalence suite (and the bench harness) can pin a path explicitly and
//! compare levels inside one process, independently of the cached dispatch
//! decision.

use std::sync::OnceLock;

/// An instruction-set tier the dispatcher can select.
///
/// Ordered: a level is usable whenever the hardware level is `>=` it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Portable scalar Rust, the reference semantics.
    Scalar,
    /// SSE2 (the x86-64 baseline; always available there).
    Sse2,
    /// AVX2 with 256-bit integer ops and gathers.
    Avx2,
}

impl Level {
    /// Stable lowercase name (used in logs and bench rows).
    pub fn name(self) -> &'static str {
        match self {
            Level::Scalar => "scalar",
            Level::Sse2 => "sse2",
            Level::Avx2 => "avx2",
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The best level this CPU supports, ignoring `GRACE_FORCE_SCALAR`.
pub fn hw_level() -> Level {
    static HW: OnceLock<Level> = OnceLock::new();
    *HW.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                Level::Avx2
            } else {
                Level::Sse2
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Level::Scalar
        }
    })
}

/// The level auto-dispatch uses: [`hw_level`] unless `GRACE_FORCE_SCALAR`
/// is set to a non-empty value other than `0`, in which case `Scalar`.
///
/// Read once per process and cached; changing the environment variable
/// afterwards has no effect.
pub fn level() -> Level {
    static ACTIVE: OnceLock<Level> = OnceLock::new();
    *ACTIVE.get_or_init(|| {
        let forced =
            std::env::var_os("GRACE_FORCE_SCALAR").is_some_and(|v| !v.is_empty() && v != *"0");
        if forced {
            Level::Scalar
        } else {
            hw_level()
        }
    })
}

/// Every level the current CPU can execute, in ascending order.
///
/// Unlike [`level`] this ignores `GRACE_FORCE_SCALAR`, so the equivalence
/// suite can cross-check vector bodies even in a forced-scalar run.
pub fn available_levels() -> Vec<Level> {
    let mut out = vec![Level::Scalar];
    if hw_level() >= Level::Sse2 {
        out.push(Level::Sse2);
    }
    if hw_level() >= Level::Avx2 {
        out.push(Level::Avx2);
    }
    out
}

#[track_caller]
fn checked(lvl: Level) -> Level {
    assert!(
        lvl <= hw_level(),
        "SIMD level {lvl} not supported by this CPU (max {})",
        hw_level()
    );
    lvl
}

/// Dispatches to a per-level body after validating hardware support. On
/// non-x86-64 targets only the scalar arm is compiled.
macro_rules! dispatch {
    ($lvl:expr, scalar: $s:expr, sse2: $e2:expr, avx2: $a2:expr) => {{
        let lvl = checked($lvl);
        #[cfg(target_arch = "x86_64")]
        {
            match lvl {
                // SAFETY: `checked` proved the CPU supports the feature the
                // `#[target_feature]` body was compiled for.
                Level::Avx2 => unsafe { $a2 },
                Level::Sse2 => unsafe { $e2 },
                Level::Scalar => $s,
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = lvl;
            $s
        }
    }};
}

// ---------------------------------------------------------------------------
// abs-max (‖g‖∞ as a bit pattern)
// ---------------------------------------------------------------------------

/// Maximum absolute-value **bit pattern** over `xs` (0 for an empty slice).
///
/// For finite floats, clearing the sign bit makes the IEEE-754 encoding
/// order-isomorphic to the magnitude order, so an integer max over the
/// masked bits equals `fold(0.0, |m, v| m.max(v.abs()))` — and, unlike the
/// float fold, it is exactly associative, so any lane tree gives the same
/// answer. NaN patterns compare above +∞: a NaN input yields a NaN result
/// rather than being skipped (callers already reject non-finite gradients).
pub fn abs_max_bits(xs: &[f32]) -> u32 {
    abs_max_bits_at(level(), xs)
}

/// [`abs_max_bits`] with an explicit dispatch level.
pub fn abs_max_bits_at(lvl: Level, xs: &[f32]) -> u32 {
    dispatch!(lvl,
        scalar: scalar::abs_max_bits(xs),
        sse2: x86::abs_max_bits_sse2(xs),
        avx2: x86::abs_max_bits_avx2(xs))
}

/// Writes `xs[i].to_bits() & 0x7FFF_FFFF` into `out` (abs-value bit
/// patterns, the integer key top-k selection sorts by).
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn abs_bits_into(xs: &[f32], out: &mut [u32]) {
    abs_bits_into_at(level(), xs, out);
}

/// [`abs_bits_into`] with an explicit dispatch level.
pub fn abs_bits_into_at(lvl: Level, xs: &[f32], out: &mut [u32]) {
    assert_eq!(xs.len(), out.len(), "abs_bits_into length mismatch");
    dispatch!(lvl,
        scalar: scalar::abs_bits_into(xs, out),
        sse2: x86::abs_bits_into_sse2(xs, out),
        avx2: x86::abs_bits_into_avx2(xs, out))
}

// ---------------------------------------------------------------------------
// axpy (the inner row op of PowerSGD's matmuls and error-feedback updates)
// ---------------------------------------------------------------------------

/// `y[i] += a * x[i]`, elementwise.
///
/// Each output lane performs exactly one `mul` and one `add` (never FMA),
/// so the vector paths are bit-identical to the scalar loop.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn axpy(y: &mut [f32], a: f32, x: &[f32]) {
    axpy_at(level(), y, a, x);
}

/// [`axpy`] with an explicit dispatch level.
pub fn axpy_at(lvl: Level, y: &mut [f32], a: f32, x: &[f32]) {
    assert_eq!(y.len(), x.len(), "axpy length mismatch");
    dispatch!(lvl,
        scalar: scalar::axpy(y, a, x),
        sse2: x86::axpy_sse2(y, a, x),
        avx2: x86::axpy_avx2(y, a, x))
}

// ---------------------------------------------------------------------------
// byte-width packing (the 8-bit quantizer family's wire format)
// ---------------------------------------------------------------------------

/// Truncates each `u32` to its low byte: `out[i] = values[i] as u8`.
///
/// This is the width-8 fast path of `pack_bits`; the caller has already
/// validated that every value fits. The kernel itself is total and
/// truncating, exactly like the scalar cast.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn narrow_to_bytes(values: &[u32], out: &mut [u8]) {
    narrow_to_bytes_at(level(), values, out);
}

/// [`narrow_to_bytes`] with an explicit dispatch level.
pub fn narrow_to_bytes_at(lvl: Level, values: &[u32], out: &mut [u8]) {
    assert_eq!(values.len(), out.len(), "narrow_to_bytes length mismatch");
    dispatch!(lvl,
        scalar: scalar::narrow_to_bytes(values, out),
        sse2: x86::narrow_to_bytes_sse2(values, out),
        avx2: x86::narrow_to_bytes_avx2(values, out))
}

/// Zero-extends each byte to a `u32`: `out[i] = bytes[i] as u32` (the
/// width-8 unpack fast path).
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn widen_from_bytes(bytes: &[u8], out: &mut [u32]) {
    widen_from_bytes_at(level(), bytes, out);
}

/// [`widen_from_bytes`] with an explicit dispatch level.
pub fn widen_from_bytes_at(lvl: Level, bytes: &[u8], out: &mut [u32]) {
    assert_eq!(bytes.len(), out.len(), "widen_from_bytes length mismatch");
    dispatch!(lvl,
        scalar: scalar::widen_from_bytes(bytes, out),
        sse2: x86::widen_from_bytes_sse2(bytes, out),
        avx2: x86::widen_from_bytes_avx2(bytes, out))
}

// ---------------------------------------------------------------------------
// code-book quantize / dequantize (8-bit sign + magnitude)
// ---------------------------------------------------------------------------

/// Quantizes each element against a sorted magnitude code-book:
/// `out[i] = (xs[i] < 0.0) << 7 | nearest(|xs[i]| * inv)`, where `nearest`
/// is the `partition_point(|v| v < x)` bin search with the
/// `(x - lo) <= (hi - x)` midpoint tie rule — byte-for-byte the 8-bit
/// quantizer's `find_bins`.
///
/// Both paths run the same fixed-shape branchless binary search (probe
/// schedule depends only on `table.len()`), so they make identical float
/// comparisons per element; the AVX2 body evaluates eight elements per
/// probe via gathers.
///
/// # Panics
///
/// Panics if the output length differs from the input length, or if the
/// code-book is empty or longer than 128 entries (the magnitude field is 7
/// bits).
pub fn quantize_sign_mag(table: &[f32], xs: &[f32], inv: f32, out: &mut [u32]) {
    quantize_sign_mag_at(level(), table, xs, inv, out);
}

/// [`quantize_sign_mag`] with an explicit dispatch level.
pub fn quantize_sign_mag_at(lvl: Level, table: &[f32], xs: &[f32], inv: f32, out: &mut [u32]) {
    assert_eq!(xs.len(), out.len(), "quantize_sign_mag length mismatch");
    assert!(
        !table.is_empty() && table.len() <= 128,
        "code-book must have 1..=128 entries, got {}",
        table.len()
    );
    dispatch!(lvl,
        scalar: scalar::quantize_sign_mag(table, xs, inv, out),
        sse2: x86::quantize_sign_mag_sse2(table, xs, inv, out),
        avx2: x86::quantize_sign_mag_avx2(table, xs, inv, out))
}

/// Decodes sign + 7-bit magnitude codes:
/// `out[i] = sign(codes[i]) * table[codes[i] & 0x7F] * scale` with
/// `sign = -1.0` exactly when `codes[i] >> 7 == 1`. The multiplication
/// order matches the scalar decode expression, so `-0.0` cases survive.
///
/// # Panics
///
/// Panics if the output length differs from the code count, or if the
/// code-book has fewer than 128 entries (every masked index must be valid).
pub fn dequant_sign_mag(table: &[f32], codes: &[u32], scale: f32, out: &mut [f32]) {
    dequant_sign_mag_at(level(), table, codes, scale, out);
}

/// [`dequant_sign_mag`] with an explicit dispatch level.
pub fn dequant_sign_mag_at(lvl: Level, table: &[f32], codes: &[u32], scale: f32, out: &mut [f32]) {
    assert_eq!(codes.len(), out.len(), "dequant_sign_mag length mismatch");
    assert!(
        table.len() > 0x7F,
        "code-book must have at least 128 entries, got {}",
        table.len()
    );
    dispatch!(lvl,
        scalar: scalar::dequant_sign_mag(table, codes, scale, out),
        sse2: x86::dequant_sign_mag_sse2(table, codes, scale, out),
        avx2: x86::dequant_sign_mag_avx2(table, codes, scale, out))
}

/// Accumulating variant of [`dequant_sign_mag`]:
/// `out[i] += sign(codes[i]) * table[codes[i] & 0x7F] * scale` — the
/// homomorphic fold's per-worker add, one `add` per element after the same
/// decode product (never FMA).
///
/// # Panics
///
/// Same contract as [`dequant_sign_mag`].
pub fn dequant_sign_mag_add(table: &[f32], codes: &[u32], scale: f32, out: &mut [f32]) {
    dequant_sign_mag_add_at(level(), table, codes, scale, out);
}

/// [`dequant_sign_mag_add`] with an explicit dispatch level.
pub fn dequant_sign_mag_add_at(
    lvl: Level,
    table: &[f32],
    codes: &[u32],
    scale: f32,
    out: &mut [f32],
) {
    assert_eq!(codes.len(), out.len(), "dequant_sign_mag length mismatch");
    assert!(
        table.len() > 0x7F,
        "code-book must have at least 128 entries, got {}",
        table.len()
    );
    dispatch!(lvl,
        scalar: scalar::dequant_sign_mag_add(table, codes, scale, out),
        sse2: x86::dequant_sign_mag_add_sse2(table, codes, scale, out),
        avx2: x86::dequant_sign_mag_add_avx2(table, codes, scale, out))
}

// ---------------------------------------------------------------------------
// sparse gather
// ---------------------------------------------------------------------------

/// `out[j] = src[indices[j]]` (the sparsify gather).
///
/// The AVX2 body pre-validates every index with an integer max reduction
/// and only then issues hardware gathers; invalid indices fall back to the
/// scalar loop so the out-of-bounds panic is identical.
///
/// # Panics
///
/// Panics if the output length differs from the index count, or if an
/// index is out of bounds for `src`.
pub fn gather_f32(src: &[f32], indices: &[u32], out: &mut [f32]) {
    gather_f32_at(level(), src, indices, out);
}

/// [`gather_f32`] with an explicit dispatch level.
pub fn gather_f32_at(lvl: Level, src: &[f32], indices: &[u32], out: &mut [f32]) {
    assert_eq!(indices.len(), out.len(), "gather_f32 length mismatch");
    dispatch!(lvl,
        scalar: scalar::gather_f32(src, indices, out),
        sse2: x86::gather_f32_sse2(src, indices, out),
        avx2: x86::gather_f32_avx2(src, indices, out))
}

/// Portable scalar bodies — the reference semantics every vector path must
/// reproduce bit-for-bit.
mod scalar {
    const ABS_MASK: u32 = 0x7FFF_FFFF;

    pub fn abs_max_bits(xs: &[f32]) -> u32 {
        let mut m = 0u32;
        for &v in xs {
            m = m.max(v.to_bits() & ABS_MASK);
        }
        m
    }

    pub fn abs_bits_into(xs: &[f32], out: &mut [u32]) {
        for (o, &v) in out.iter_mut().zip(xs) {
            *o = v.to_bits() & ABS_MASK;
        }
    }

    pub fn axpy(y: &mut [f32], a: f32, x: &[f32]) {
        for (yi, &xi) in y.iter_mut().zip(x) {
            *yi += a * xi;
        }
    }

    pub fn narrow_to_bytes(values: &[u32], out: &mut [u8]) {
        for (o, &v) in out.iter_mut().zip(values) {
            *o = v as u8;
        }
    }

    pub fn widen_from_bytes(bytes: &[u8], out: &mut [u32]) {
        for (o, &b) in out.iter_mut().zip(bytes) {
            *o = u32::from(b);
        }
    }

    /// Branchless `table.partition_point(|v| *v < x)` for a sorted table.
    /// The probe schedule depends only on `table.len()`, so the AVX2 body
    /// can replay it lane-parallel with identical comparisons.
    pub fn lower_bound(table: &[f32], x: f32) -> usize {
        let mut base = 0usize;
        let mut n = table.len();
        while n > 1 {
            let half = n / 2;
            base += usize::from(table[base + half - 1] < x) * half;
            n -= half;
        }
        base + usize::from(n == 1 && table[base] < x)
    }

    pub fn quantize_sign_mag(table: &[f32], xs: &[f32], inv: f32, out: &mut [u32]) {
        let n = table.len();
        for (o, &v) in out.iter_mut().zip(xs) {
            let x = v.abs() * inv;
            let idx = lower_bound(table, x);
            let mag = if idx == 0 {
                0
            } else if idx >= n {
                (n - 1) as u32
            } else {
                let lo = table[idx - 1];
                let hi = table[idx];
                if (x - lo) <= (hi - x) {
                    (idx - 1) as u32
                } else {
                    idx as u32
                }
            };
            *o = (u32::from(v < 0.0) << 7) | mag;
        }
    }

    pub fn dequant_sign_mag(table: &[f32], codes: &[u32], scale: f32, out: &mut [f32]) {
        for (o, &code) in out.iter_mut().zip(codes) {
            let sign = if code >> 7 == 1 { -1.0f32 } else { 1.0 };
            *o = sign * table[(code & 0x7F) as usize] * scale;
        }
    }

    pub fn dequant_sign_mag_add(table: &[f32], codes: &[u32], scale: f32, out: &mut [f32]) {
        for (o, &code) in out.iter_mut().zip(codes) {
            let sign = if code >> 7 == 1 { -1.0f32 } else { 1.0 };
            *o += sign * table[(code & 0x7F) as usize] * scale;
        }
    }

    pub fn gather_f32(src: &[f32], indices: &[u32], out: &mut [f32]) {
        for (o, &i) in out.iter_mut().zip(indices) {
            *o = src[i as usize];
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::scalar;
    use std::arch::x86_64::*;

    const ABS_MASK: i32 = 0x7FFF_FFFF;

    // SSE2 has no gather instruction and no cheap 128-entry table probe, so
    // the table-driven kernels delegate to the scalar body at that level
    // (see the fallback matrix in DESIGN.md §16). The forwarders keep the
    // dispatch macro uniform.
    #[target_feature(enable = "sse2")]
    pub fn quantize_sign_mag_sse2(table: &[f32], xs: &[f32], inv: f32, out: &mut [u32]) {
        scalar::quantize_sign_mag(table, xs, inv, out);
    }

    #[target_feature(enable = "sse2")]
    pub fn dequant_sign_mag_sse2(table: &[f32], codes: &[u32], scale: f32, out: &mut [f32]) {
        scalar::dequant_sign_mag(table, codes, scale, out);
    }

    #[target_feature(enable = "sse2")]
    pub fn dequant_sign_mag_add_sse2(table: &[f32], codes: &[u32], scale: f32, out: &mut [f32]) {
        scalar::dequant_sign_mag_add(table, codes, scale, out);
    }

    #[target_feature(enable = "sse2")]
    pub fn gather_f32_sse2(src: &[f32], indices: &[u32], out: &mut [f32]) {
        scalar::gather_f32(src, indices, out);
    }

    /// SSE2 lacks `pmaxud`; abs bit patterns have the top bit clear, so the
    /// signed compare is exact.
    #[target_feature(enable = "sse2")]
    fn max_abs_epi32(a: __m128i, b: __m128i) -> __m128i {
        let gt = _mm_cmpgt_epi32(a, b);
        _mm_or_si128(_mm_and_si128(gt, a), _mm_andnot_si128(gt, b))
    }

    #[target_feature(enable = "sse2")]
    pub fn abs_max_bits_sse2(xs: &[f32]) -> u32 {
        let mask = _mm_set1_epi32(ABS_MASK);
        let mut m = _mm_setzero_si128();
        let mut chunks = xs.chunks_exact(4);
        for c in chunks.by_ref() {
            // SAFETY: `c` is 4 f32s = 16 readable bytes; loadu allows any
            // alignment.
            let v = unsafe { _mm_loadu_si128(c.as_ptr().cast()) };
            m = max_abs_epi32(m, _mm_and_si128(v, mask));
        }
        m = max_abs_epi32(m, _mm_srli_si128::<8>(m));
        m = max_abs_epi32(m, _mm_srli_si128::<4>(m));
        let mut best = _mm_cvtsi128_si32(m) as u32;
        best = best.max(scalar::abs_max_bits(chunks.remainder()));
        best
    }

    #[target_feature(enable = "avx2")]
    pub fn abs_max_bits_avx2(xs: &[f32]) -> u32 {
        let mask = _mm256_set1_epi32(ABS_MASK);
        let mut m = _mm256_setzero_si256();
        let mut chunks = xs.chunks_exact(8);
        for c in chunks.by_ref() {
            // SAFETY: `c` is 8 f32s = 32 readable bytes; loadu allows any
            // alignment.
            let v = unsafe { _mm256_loadu_si256(c.as_ptr().cast()) };
            m = _mm256_max_epu32(m, _mm256_and_si256(v, mask));
        }
        let lo = _mm256_castsi256_si128(m);
        let hi = _mm256_extracti128_si256::<1>(m);
        let mut q = max_abs_epi32(lo, hi);
        q = max_abs_epi32(q, _mm_srli_si128::<8>(q));
        q = max_abs_epi32(q, _mm_srli_si128::<4>(q));
        let mut best = _mm_cvtsi128_si32(q) as u32;
        best = best.max(scalar::abs_max_bits(chunks.remainder()));
        best
    }

    #[target_feature(enable = "sse2")]
    pub fn abs_bits_into_sse2(xs: &[f32], out: &mut [u32]) {
        let mask = _mm_set1_epi32(ABS_MASK);
        let n = xs.len();
        let mut i = 0;
        while i + 4 <= n {
            // SAFETY: i + 4 <= n bounds both the 16-byte load and store;
            // out.len() == xs.len() is asserted by the caller.
            unsafe {
                let v = _mm_loadu_si128(xs.as_ptr().add(i).cast());
                _mm_storeu_si128(out.as_mut_ptr().add(i).cast(), _mm_and_si128(v, mask));
            }
            i += 4;
        }
        scalar::abs_bits_into(&xs[i..], &mut out[i..]);
    }

    #[target_feature(enable = "avx2")]
    pub fn abs_bits_into_avx2(xs: &[f32], out: &mut [u32]) {
        let mask = _mm256_set1_epi32(ABS_MASK);
        let n = xs.len();
        let mut i = 0;
        while i + 8 <= n {
            // SAFETY: i + 8 <= n bounds both the 32-byte load and store.
            unsafe {
                let v = _mm256_loadu_si256(xs.as_ptr().add(i).cast());
                _mm256_storeu_si256(out.as_mut_ptr().add(i).cast(), _mm256_and_si256(v, mask));
            }
            i += 8;
        }
        scalar::abs_bits_into(&xs[i..], &mut out[i..]);
    }

    #[target_feature(enable = "sse2")]
    pub fn axpy_sse2(y: &mut [f32], a: f32, x: &[f32]) {
        let av = _mm_set1_ps(a);
        let n = y.len();
        let mut i = 0;
        while i + 4 <= n {
            // SAFETY: i + 4 <= n == x.len() == y.len() bounds the loads and
            // the store.
            unsafe {
                let xv = _mm_loadu_ps(x.as_ptr().add(i));
                let yv = _mm_loadu_ps(y.as_ptr().add(i));
                _mm_storeu_ps(y.as_mut_ptr().add(i), _mm_add_ps(yv, _mm_mul_ps(av, xv)));
            }
            i += 4;
        }
        scalar::axpy(&mut y[i..], a, &x[i..]);
    }

    #[target_feature(enable = "avx2")]
    pub fn axpy_avx2(y: &mut [f32], a: f32, x: &[f32]) {
        let av = _mm256_set1_ps(a);
        let n = y.len();
        let mut i = 0;
        while i + 8 <= n {
            // SAFETY: i + 8 <= n == x.len() == y.len() bounds the loads and
            // the store.
            unsafe {
                let xv = _mm256_loadu_ps(x.as_ptr().add(i));
                let yv = _mm256_loadu_ps(y.as_ptr().add(i));
                _mm256_storeu_ps(
                    y.as_mut_ptr().add(i),
                    _mm256_add_ps(yv, _mm256_mul_ps(av, xv)),
                );
            }
            i += 8;
        }
        scalar::axpy(&mut y[i..], a, &x[i..]);
    }

    #[target_feature(enable = "sse2")]
    pub fn narrow_to_bytes_sse2(values: &[u32], out: &mut [u8]) {
        // Mask to the low byte first so the saturating packs reproduce the
        // scalar truncating cast on out-of-range inputs too.
        let mask = _mm_set1_epi32(0xFF);
        let n = values.len();
        let mut i = 0;
        while i + 16 <= n {
            // SAFETY: i + 16 <= n bounds the four 16-byte loads and the
            // 16-byte store (out.len() == values.len()).
            unsafe {
                let p = values.as_ptr().add(i);
                let v0 = _mm_and_si128(_mm_loadu_si128(p.cast()), mask);
                let v1 = _mm_and_si128(_mm_loadu_si128(p.add(4).cast()), mask);
                let v2 = _mm_and_si128(_mm_loadu_si128(p.add(8).cast()), mask);
                let v3 = _mm_and_si128(_mm_loadu_si128(p.add(12).cast()), mask);
                let w = _mm_packus_epi16(_mm_packs_epi32(v0, v1), _mm_packs_epi32(v2, v3));
                _mm_storeu_si128(out.as_mut_ptr().add(i).cast(), w);
            }
            i += 16;
        }
        scalar::narrow_to_bytes(&values[i..], &mut out[i..]);
    }

    #[target_feature(enable = "avx2")]
    pub fn narrow_to_bytes_avx2(values: &[u32], out: &mut [u8]) {
        let mask = _mm256_set1_epi32(0xFF);
        // packs/packus interleave their operands per 128-bit lane; this
        // permutation restores source order on the packed bytes.
        let fix = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
        let n = values.len();
        let mut i = 0;
        while i + 32 <= n {
            // SAFETY: i + 32 <= n bounds the four 32-byte loads and the
            // 32-byte store (out.len() == values.len()).
            unsafe {
                let p = values.as_ptr().add(i);
                let v0 = _mm256_and_si256(_mm256_loadu_si256(p.cast()), mask);
                let v1 = _mm256_and_si256(_mm256_loadu_si256(p.add(8).cast()), mask);
                let v2 = _mm256_and_si256(_mm256_loadu_si256(p.add(16).cast()), mask);
                let v3 = _mm256_and_si256(_mm256_loadu_si256(p.add(24).cast()), mask);
                let w = _mm256_packus_epi16(_mm256_packs_epi32(v0, v1), _mm256_packs_epi32(v2, v3));
                let w = _mm256_permutevar8x32_epi32(w, fix);
                _mm256_storeu_si256(out.as_mut_ptr().add(i).cast(), w);
            }
            i += 32;
        }
        scalar::narrow_to_bytes(&values[i..], &mut out[i..]);
    }

    #[target_feature(enable = "sse2")]
    pub fn widen_from_bytes_sse2(bytes: &[u8], out: &mut [u32]) {
        let zero = _mm_setzero_si128();
        let n = bytes.len();
        let mut i = 0;
        while i + 16 <= n {
            // SAFETY: i + 16 <= n bounds the 16-byte load and the four
            // 16-byte stores (out.len() == bytes.len()).
            unsafe {
                let b = _mm_loadu_si128(bytes.as_ptr().add(i).cast());
                let lo16 = _mm_unpacklo_epi8(b, zero);
                let hi16 = _mm_unpackhi_epi8(b, zero);
                let o = out.as_mut_ptr().add(i);
                _mm_storeu_si128(o.cast(), _mm_unpacklo_epi16(lo16, zero));
                _mm_storeu_si128(o.add(4).cast(), _mm_unpackhi_epi16(lo16, zero));
                _mm_storeu_si128(o.add(8).cast(), _mm_unpacklo_epi16(hi16, zero));
                _mm_storeu_si128(o.add(12).cast(), _mm_unpackhi_epi16(hi16, zero));
            }
            i += 16;
        }
        scalar::widen_from_bytes(&bytes[i..], &mut out[i..]);
    }

    #[target_feature(enable = "avx2")]
    pub fn widen_from_bytes_avx2(bytes: &[u8], out: &mut [u32]) {
        let n = bytes.len();
        let mut i = 0;
        while i + 8 <= n {
            // SAFETY: i + 8 <= n bounds the 8-byte load and the 32-byte
            // store (out.len() == bytes.len()).
            unsafe {
                let b = _mm_loadl_epi64(bytes.as_ptr().add(i).cast());
                let w = _mm256_cvtepu8_epi32(b);
                _mm256_storeu_si256(out.as_mut_ptr().add(i).cast(), w);
            }
            i += 8;
        }
        scalar::widen_from_bytes(&bytes[i..], &mut out[i..]);
    }

    /// Lane-parallel replay of the scalar branchless lower bound over an
    /// arbitrary-size table: same probe schedule, same `<` comparisons,
    /// one hardware gather per probe.
    #[target_feature(enable = "avx2")]
    fn quantize_sign_mag_avx2_generic(table: &[f32], xs: &[f32], inv: f32, out: &mut [u32]) {
        let n = table.len();
        let abs_mask = _mm256_set1_ps(f32::from_bits(0x7FFF_FFFF));
        let invv = _mm256_set1_ps(inv);
        let fzero = _mm256_setzero_ps();
        let izero = _mm256_setzero_si256();
        let ione = _mm256_set1_epi32(1);
        let nm1 = _mm256_set1_epi32((n - 1) as i32);
        let sign_bit = _mm256_set1_epi32(0x80);
        let len = xs.len();
        let mut i = 0;
        while i + 8 <= len {
            // SAFETY: i + 8 <= len bounds the 32-byte load; every gather
            // index stays in 0..table.len() by the lower-bound invariant
            // (base + rem <= table.len()) and the min/max clamps below.
            unsafe {
                let v = _mm256_loadu_ps(xs.as_ptr().add(i));
                let x = _mm256_mul_ps(_mm256_and_ps(v, abs_mask), invv);
                let mut base = izero;
                let mut rem = n;
                while rem > 1 {
                    let half = rem / 2;
                    let probe = _mm256_add_epi32(base, _mm256_set1_epi32((half - 1) as i32));
                    let t = _mm256_i32gather_ps::<4>(table.as_ptr(), probe);
                    let lt = _mm256_castps_si256(_mm256_cmp_ps::<_CMP_LT_OQ>(t, x));
                    base = _mm256_sub_epi32(
                        base,
                        _mm256_and_si256(lt, _mm256_set1_epi32(-(half as i32))),
                    );
                    rem -= half;
                }
                let t = _mm256_i32gather_ps::<4>(table.as_ptr(), base);
                let lt = _mm256_castps_si256(_mm256_cmp_ps::<_CMP_LT_OQ>(t, x));
                // lt is 0 or -1 per lane; idx = base + (table[base] < x).
                let idx = _mm256_sub_epi32(base, lt);
                // Midpoint tie rule on the clamped neighbours.
                let lo_idx = _mm256_sub_epi32(_mm256_max_epi32(idx, ione), ione);
                let hi_idx = _mm256_min_epi32(idx, nm1);
                let lo = _mm256_i32gather_ps::<4>(table.as_ptr(), lo_idx);
                let hi = _mm256_i32gather_ps::<4>(table.as_ptr(), hi_idx);
                let take_lo = _mm256_castps_si256(_mm256_cmp_ps::<_CMP_LE_OQ>(
                    _mm256_sub_ps(x, lo),
                    _mm256_sub_ps(hi, x),
                ));
                // take_lo is -1 to pick idx-1, 0 to keep idx.
                let mut mag = _mm256_add_epi32(idx, take_lo);
                // idx >= n  ->  n-1 ; idx == 0  ->  0 (the two are exclusive).
                let ge_n = _mm256_cmpgt_epi32(idx, nm1);
                mag = _mm256_blendv_epi8(mag, nm1, ge_n);
                mag = _mm256_andnot_si256(_mm256_cmpeq_epi32(idx, izero), mag);
                let neg = _mm256_castps_si256(_mm256_cmp_ps::<_CMP_LT_OQ>(v, fzero));
                let code = _mm256_or_si256(_mm256_and_si256(neg, sign_bit), mag);
                _mm256_storeu_si256(out.as_mut_ptr().add(i).cast(), code);
            }
            i += 8;
        }
        scalar::quantize_sign_mag(table, &xs[i..], inv, &mut out[i..]);
    }

    /// The 128-entry specialization (the 8-bit quantizer's code-book size).
    ///
    /// The probe schedule for `n = 128` is fixed: strides 64, 32, 16, 8, 4,
    /// 2, 1, then the final `rem == 1` probe. The first four probes have at
    /// most 8 distinct candidate positions (`base` is a multiple of the
    /// stride), so instead of gathering, the candidate table values are
    /// pre-loaded once and each lane *selects* its probe with a cross-lane
    /// permute keyed on `base >> log2(stride)`. The selected values are
    /// exactly the table entries the scalar search reads, and every
    /// comparison is the same `<` on the same operands, so bit identity is
    /// preserved; only four of the eight search probes still need a
    /// hardware gather, which roughly halves the latency-bound critical
    /// path per vector.
    #[target_feature(enable = "avx2")]
    fn quantize_sign_mag_avx2_128(table: &[f32], xs: &[f32], inv: f32, out: &mut [u32]) {
        debug_assert_eq!(table.len(), 128);
        let abs_mask = _mm256_set1_ps(f32::from_bits(0x7FFF_FFFF));
        let invv = _mm256_set1_ps(inv);
        let fzero = _mm256_setzero_ps();
        let izero = _mm256_setzero_si256();
        let ione = _mm256_set1_epi32(1);
        let nm1 = _mm256_set1_epi32(127);
        let sign_bit = _mm256_set1_epi32(0x80);
        // Probe candidates for the first four steps. Step 1 probes
        // table[63] for every lane; step k probes base + stride - 1 where
        // base ranges over multiples of 2*stride-ish positions listed here.
        let cand1 = _mm256_set1_ps(table[63]);
        let cand2 = _mm256_setr_ps(
            table[31], table[95], table[31], table[95], table[31], table[95], table[31], table[95],
        );
        let cand3 = _mm256_setr_ps(
            table[15], table[47], table[79], table[111], table[15], table[47], table[79],
            table[111],
        );
        let cand4 = _mm256_setr_ps(
            table[7], table[23], table[39], table[55], table[71], table[87], table[103], table[119],
        );
        let len = xs.len();
        let mut i = 0;
        while i + 8 <= len {
            // SAFETY: i + 8 <= len bounds the 32-byte load and store; every
            // gather index stays in 0..128 by the lower-bound invariant and
            // the min/max clamps below.
            unsafe {
                let v = _mm256_loadu_ps(xs.as_ptr().add(i));
                let x = _mm256_mul_ps(_mm256_and_ps(v, abs_mask), invv);
                // Step 1: probe table[63]; base += 64 where table[63] < x.
                let lt = _mm256_castps_si256(_mm256_cmp_ps::<_CMP_LT_OQ>(cand1, x));
                let mut base = _mm256_and_si256(lt, _mm256_set1_epi32(64));
                // Step 2: probe table[base + 31]; base in {0, 64}.
                let t = _mm256_permutevar8x32_ps(cand2, _mm256_srli_epi32::<6>(base));
                let lt = _mm256_castps_si256(_mm256_cmp_ps::<_CMP_LT_OQ>(t, x));
                base = _mm256_sub_epi32(base, _mm256_and_si256(lt, _mm256_set1_epi32(-32)));
                // Step 3: probe table[base + 15]; base in {0, 32, 64, 96}.
                let t = _mm256_permutevar8x32_ps(cand3, _mm256_srli_epi32::<5>(base));
                let lt = _mm256_castps_si256(_mm256_cmp_ps::<_CMP_LT_OQ>(t, x));
                base = _mm256_sub_epi32(base, _mm256_and_si256(lt, _mm256_set1_epi32(-16)));
                // Step 4: probe table[base + 7]; base is a multiple of 16.
                let t = _mm256_permutevar8x32_ps(cand4, _mm256_srli_epi32::<4>(base));
                let lt = _mm256_castps_si256(_mm256_cmp_ps::<_CMP_LT_OQ>(t, x));
                base = _mm256_sub_epi32(base, _mm256_and_si256(lt, _mm256_set1_epi32(-8)));
                // Steps 5-7: 16+ candidates, back to hardware gathers.
                for (off, neg_half) in [(3, -4), (1, -2), (0, -1)] {
                    let probe = _mm256_add_epi32(base, _mm256_set1_epi32(off));
                    let t = _mm256_i32gather_ps::<4>(table.as_ptr(), probe);
                    let lt = _mm256_castps_si256(_mm256_cmp_ps::<_CMP_LT_OQ>(t, x));
                    base =
                        _mm256_sub_epi32(base, _mm256_and_si256(lt, _mm256_set1_epi32(neg_half)));
                }
                // Final rem == 1 probe: idx = base + (table[base] < x).
                let t = _mm256_i32gather_ps::<4>(table.as_ptr(), base);
                let lt = _mm256_castps_si256(_mm256_cmp_ps::<_CMP_LT_OQ>(t, x));
                let idx = _mm256_sub_epi32(base, lt);
                // Midpoint tie rule on the clamped neighbours.
                let lo_idx = _mm256_sub_epi32(_mm256_max_epi32(idx, ione), ione);
                let hi_idx = _mm256_min_epi32(idx, nm1);
                let lo = _mm256_i32gather_ps::<4>(table.as_ptr(), lo_idx);
                let hi = _mm256_i32gather_ps::<4>(table.as_ptr(), hi_idx);
                let take_lo = _mm256_castps_si256(_mm256_cmp_ps::<_CMP_LE_OQ>(
                    _mm256_sub_ps(x, lo),
                    _mm256_sub_ps(hi, x),
                ));
                let mut mag = _mm256_add_epi32(idx, take_lo);
                let ge_n = _mm256_cmpgt_epi32(idx, nm1);
                mag = _mm256_blendv_epi8(mag, nm1, ge_n);
                mag = _mm256_andnot_si256(_mm256_cmpeq_epi32(idx, izero), mag);
                let neg = _mm256_castps_si256(_mm256_cmp_ps::<_CMP_LT_OQ>(v, fzero));
                let code = _mm256_or_si256(_mm256_and_si256(neg, sign_bit), mag);
                _mm256_storeu_si256(out.as_mut_ptr().add(i).cast(), code);
            }
            i += 8;
        }
        scalar::quantize_sign_mag(table, &xs[i..], inv, &mut out[i..]);
    }

    #[target_feature(enable = "avx2")]
    pub fn quantize_sign_mag_avx2(table: &[f32], xs: &[f32], inv: f32, out: &mut [u32]) {
        if table.len() == 128 {
            quantize_sign_mag_avx2_128(table, xs, inv, out);
        } else {
            quantize_sign_mag_avx2_generic(table, xs, inv, out);
        }
    }

    #[target_feature(enable = "avx2")]
    pub fn dequant_sign_mag_avx2(table: &[f32], codes: &[u32], scale: f32, out: &mut [f32]) {
        let mag_mask = _mm256_set1_epi32(0x7F);
        let ione = _mm256_set1_epi32(1);
        let plus = _mm256_set1_ps(1.0);
        let minus = _mm256_set1_ps(-1.0);
        let sc = _mm256_set1_ps(scale);
        let n = codes.len();
        let mut i = 0;
        while i + 8 <= n {
            // SAFETY: i + 8 <= n bounds the load and store; gather indices
            // are masked to 0..=0x7F and the caller asserted
            // table.len() > 0x7F.
            unsafe {
                let c = _mm256_loadu_si256(codes.as_ptr().add(i).cast());
                let mag = _mm256_i32gather_ps::<4>(table.as_ptr(), _mm256_and_si256(c, mag_mask));
                // sign = -1.0 exactly when code >> 7 == 1 (matches the
                // scalar decode on arbitrary wide codes too).
                let is_neg = _mm256_cmpeq_epi32(_mm256_srli_epi32::<7>(c), ione);
                let sign = _mm256_blendv_ps(plus, minus, _mm256_castsi256_ps(is_neg));
                let v = _mm256_mul_ps(_mm256_mul_ps(sign, mag), sc);
                _mm256_storeu_ps(out.as_mut_ptr().add(i), v);
            }
            i += 8;
        }
        scalar::dequant_sign_mag(table, &codes[i..], scale, &mut out[i..]);
    }

    #[target_feature(enable = "avx2")]
    pub fn dequant_sign_mag_add_avx2(table: &[f32], codes: &[u32], scale: f32, out: &mut [f32]) {
        let mag_mask = _mm256_set1_epi32(0x7F);
        let ione = _mm256_set1_epi32(1);
        let plus = _mm256_set1_ps(1.0);
        let minus = _mm256_set1_ps(-1.0);
        let sc = _mm256_set1_ps(scale);
        let n = codes.len();
        let mut i = 0;
        while i + 8 <= n {
            // SAFETY: i + 8 <= n bounds the loads and store; gather indices
            // are masked to 0..=0x7F and the caller asserted
            // table.len() > 0x7F.
            unsafe {
                let c = _mm256_loadu_si256(codes.as_ptr().add(i).cast());
                let mag = _mm256_i32gather_ps::<4>(table.as_ptr(), _mm256_and_si256(c, mag_mask));
                let is_neg = _mm256_cmpeq_epi32(_mm256_srli_epi32::<7>(c), ione);
                let sign = _mm256_blendv_ps(plus, minus, _mm256_castsi256_ps(is_neg));
                let v = _mm256_mul_ps(_mm256_mul_ps(sign, mag), sc);
                let acc = _mm256_loadu_ps(out.as_ptr().add(i));
                _mm256_storeu_ps(out.as_mut_ptr().add(i), _mm256_add_ps(acc, v));
            }
            i += 8;
        }
        scalar::dequant_sign_mag_add(table, &codes[i..], scale, &mut out[i..]);
    }

    #[target_feature(enable = "avx2")]
    pub fn gather_f32_avx2(src: &[f32], indices: &[u32], out: &mut [f32]) {
        // Validate every index up front with an exact integer reduction;
        // hardware gathers have no bounds checks. Invalid input falls back
        // to the scalar loop so the panic (message and offset) is identical.
        let max = indices.iter().fold(0u32, |m, &i| m.max(i));
        if (max as usize) >= src.len() || src.len() > i32::MAX as usize {
            scalar::gather_f32(src, indices, out);
            return;
        }
        let n = indices.len();
        let mut i = 0;
        while i + 8 <= n {
            // SAFETY: i + 8 <= n bounds the index load and the store; all
            // gather offsets were proven < src.len() above.
            unsafe {
                let idx = _mm256_loadu_si256(indices.as_ptr().add(i).cast());
                let v = _mm256_i32gather_ps::<4>(src.as_ptr(), idx);
                _mm256_storeu_ps(out.as_mut_ptr().add(i), v);
            }
            i += 8;
        }
        scalar::gather_f32(src, &indices[i..], &mut out[i..]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tricky_floats() -> Vec<f32> {
        vec![
            0.0,
            -0.0,
            1.0,
            -1.0,
            f32::MIN_POSITIVE,
            -f32::MIN_POSITIVE,
            1.0e-42, // denormal
            -1.0e-42,
            f32::MAX,
            f32::MIN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::NAN,
            0.5,
            -2.75,
            3.0e7,
        ]
    }

    #[test]
    fn levels_are_ordered_and_named() {
        assert!(Level::Scalar < Level::Sse2 && Level::Sse2 < Level::Avx2);
        assert_eq!(Level::Avx2.to_string(), "avx2");
        let avail = available_levels();
        assert_eq!(avail[0], Level::Scalar);
        assert!(avail.contains(&hw_level()));
        assert!(level() <= hw_level());
    }

    #[test]
    #[should_panic(expected = "not supported")]
    fn unsupported_level_is_rejected() {
        if hw_level() == Level::Avx2 {
            panic!("not supported (no level above avx2 to request)");
        }
        let _ = abs_max_bits_at(Level::Avx2, &[1.0]);
    }

    #[test]
    fn abs_max_matches_float_fold_on_finite_input() {
        let xs = vec![0.25f32, -3.5, 2.0, -0.0, 1.0e-40];
        let want = xs.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        for lvl in available_levels() {
            assert_eq!(f32::from_bits(abs_max_bits_at(lvl, &xs)), want, "{lvl}");
        }
        assert_eq!(abs_max_bits(&[]), 0);
    }

    #[test]
    fn all_levels_agree_on_tricky_inputs() {
        let mut xs = tricky_floats();
        for rep in 0..4 {
            xs.extend(tricky_floats().iter().map(|v| v * (rep as f32 + 0.5)));
        }
        for lvl in available_levels() {
            assert_eq!(
                abs_max_bits_at(lvl, &xs),
                abs_max_bits_at(Level::Scalar, &xs),
                "abs_max {lvl}"
            );
            let mut a = vec![0u32; xs.len()];
            let mut b = vec![0u32; xs.len()];
            abs_bits_into_at(lvl, &xs, &mut a);
            abs_bits_into_at(Level::Scalar, &xs, &mut b);
            assert_eq!(a, b, "abs_bits {lvl}");
        }
    }

    #[test]
    fn lower_bound_matches_partition_point() {
        let table: Vec<f32> = (0..37).map(|i| i as f32 * 0.25).collect();
        for x in [-1.0, 0.0, 0.1, 0.25, 4.0, 9.0, 100.0, f32::NAN] {
            assert_eq!(
                scalar::lower_bound(&table, x),
                table.partition_point(|v| *v < x),
                "x = {x}"
            );
        }
        assert_eq!(scalar::lower_bound(&[], 1.0), 0);
    }

    #[test]
    fn narrow_widen_roundtrip_all_levels() {
        let values: Vec<u32> = (0..133).map(|i| (i * 7) % 256).collect();
        for lvl in available_levels() {
            let mut bytes = vec![0u8; values.len()];
            narrow_to_bytes_at(lvl, &values, &mut bytes);
            let mut back = vec![0u32; values.len()];
            widen_from_bytes_at(lvl, &bytes, &mut back);
            assert_eq!(back, values, "{lvl}");
        }
    }

    #[test]
    fn narrow_truncates_like_a_cast_on_all_levels() {
        let values: Vec<u32> = (0..67).map(|i| i * 0x0101_0101 + 0x1234).collect();
        let want: Vec<u8> = values.iter().map(|&v| v as u8).collect();
        for lvl in available_levels() {
            let mut got = vec![0u8; values.len()];
            narrow_to_bytes_at(lvl, &values, &mut got);
            assert_eq!(got, want, "{lvl}");
        }
    }

    #[test]
    fn axpy_levels_are_bit_identical() {
        let x = tricky_floats();
        let y0: Vec<f32> = x.iter().rev().copied().collect();
        for lvl in available_levels() {
            let mut y = y0.clone();
            axpy_at(lvl, &mut y, 1.5, &x);
            let mut want = y0.clone();
            axpy_at(Level::Scalar, &mut want, 1.5, &x);
            let got: Vec<u32> = y.iter().map(|v| v.to_bits()).collect();
            let exp: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, exp, "{lvl}");
        }
    }

    #[test]
    fn quantize_dequant_levels_agree() {
        let table: Vec<f32> = (0..128).map(|i| i as f32 / 127.0).collect();
        let xs = tricky_floats();
        let mut want = vec![0u32; xs.len()];
        quantize_sign_mag_at(Level::Scalar, &table, &xs, 1.0, &mut want);
        for lvl in available_levels() {
            let mut got = vec![0u32; xs.len()];
            quantize_sign_mag_at(lvl, &table, &xs, 1.0, &mut got);
            assert_eq!(got, want, "quantize {lvl}");
            let mut dec = vec![0f32; xs.len()];
            dequant_sign_mag_at(lvl, &table, &got, 2.0, &mut dec);
            let mut dec_ref = vec![0f32; xs.len()];
            dequant_sign_mag_at(Level::Scalar, &table, &want, 2.0, &mut dec_ref);
            let got_bits: Vec<u32> = dec.iter().map(|v| v.to_bits()).collect();
            let exp_bits: Vec<u32> = dec_ref.iter().map(|v| v.to_bits()).collect();
            assert_eq!(got_bits, exp_bits, "dequant {lvl}");
            let mut acc = dec.clone();
            dequant_sign_mag_add_at(lvl, &table, &got, 0.5, &mut acc);
            let mut acc_ref = dec_ref.clone();
            dequant_sign_mag_add_at(Level::Scalar, &table, &want, 0.5, &mut acc_ref);
            let got_bits: Vec<u32> = acc.iter().map(|v| v.to_bits()).collect();
            let exp_bits: Vec<u32> = acc_ref.iter().map(|v| v.to_bits()).collect();
            assert_eq!(got_bits, exp_bits, "dequant_add {lvl}");
        }
    }

    #[test]
    fn gather_levels_agree() {
        let src: Vec<f32> = (0..97).map(|i| (i as f32).sin()).collect();
        let idx: Vec<u32> = (0..41).map(|i| (i * 13) % 97).collect();
        let mut want = vec![0f32; idx.len()];
        gather_f32_at(Level::Scalar, &src, &idx, &mut want);
        for lvl in available_levels() {
            let mut got = vec![0f32; idx.len()];
            gather_f32_at(lvl, &src, &idx, &mut got);
            assert_eq!(got, want, "{lvl}");
        }
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn gather_oob_panics_on_every_level() {
        let src = [1.0f32, 2.0];
        let mut out = vec![0f32; 1];
        gather_f32_at(hw_level(), &src, &[5], &mut out);
    }
}
