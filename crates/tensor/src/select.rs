//! Element selection: top-k, threshold, random-k, and the
//! `sparsify`/`desparsify` helpers of the GRACE API (§IV-B).
//!
//! Sparsification methods (§III-B) select a subset of gradient elements and
//! transmit two rank-1 tensors: the selected values and their indices.

use crate::{Shape, Tensor};
use rand::seq::index::sample;
use rand::Rng;

/// A sparse view of a tensor: selected values and their flat indices, plus the
/// original shape needed by `desparsify`.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseSelection {
    /// Selected element values.
    pub values: Vec<f32>,
    /// Flat (row-major) indices of the selected elements.
    pub indices: Vec<u32>,
    /// Shape of the original tensor.
    pub shape: Shape,
}

impl SparseSelection {
    /// Number of selected elements.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no elements were selected.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Returns the flat indices of the `k` elements of largest absolute value.
///
/// Ties are broken towards lower indices, matching a stable selection. If
/// `k >= len`, all indices are returned. The returned indices are sorted
/// ascending (the order the paper's Figure 4 example transmits them in).
///
/// Complexity is `O(d)` expected via `select_nth_unstable`, not `O(d log d)`.
pub fn top_k_indices(values: &[f32], k: usize) -> Vec<u32> {
    let mut scratch = Vec::new();
    top_k_indices_with(values, k, &mut scratch)
}

/// [`top_k_indices`] with a caller-pooled scratch buffer.
///
/// The selection needs one `u32` per input element; steady-state callers
/// (the per-bucket compress loop) keep the scratch on the compressor so the
/// dominant `O(d)` allocation happens once, not per step. The returned
/// index vector is still fresh — it is moved into the payload.
///
/// The selection key is the absolute-value *bit pattern* (sign bit cleared,
/// compared as an integer), which orders finite floats exactly like `|v|`
/// and lets the magnitude scan vectorize. The quickselect runs on the
/// integer keys directly — no float comparator, no index permutation — and
/// a final ascending sweep collects strictly-greater elements plus
/// lowest-index ties, reproducing the stable selection contract.
pub fn top_k_indices_with(values: &[f32], k: usize, scratch: &mut Vec<u32>) -> Vec<u32> {
    let d = values.len();
    if k >= d {
        return (0..d as u32).collect();
    }
    if k == 0 {
        return Vec::new();
    }
    scratch.clear();
    scratch.resize(d, 0);
    crate::simd::abs_bits_into(values, scratch);
    // The k-th largest key is the (d-k)-th smallest. After partitioning,
    // every key strictly above the pivot sits in the right partition.
    let (_, &mut pivot, right) = scratch.select_nth_unstable(d - k);
    let above = right.iter().filter(|&&b| b > pivot).count();
    let mut ties = k - above;
    let mut out = Vec::with_capacity(k);
    for (i, &v) in values.iter().enumerate() {
        let b = v.to_bits() & 0x7FFF_FFFF;
        if b > pivot {
            out.push(i as u32);
        } else if b == pivot && ties > 0 {
            out.push(i as u32);
            ties -= 1;
        }
    }
    out
}

/// Returns the flat indices of elements with `|v| >= threshold`, ascending.
pub fn threshold_indices(values: &[f32], threshold: f32) -> Vec<u32> {
    values
        .iter()
        .enumerate()
        .filter(|(_, v)| v.abs() >= threshold)
        .map(|(i, _)| i as u32)
        .collect()
}

/// Returns `k` distinct random flat indices in `0..d`, ascending.
///
/// This is the selection step of Random-k (§III-B). The paper observes that
/// index generation is the dominant cost of Random-k on CPU (Fig. 8); this
/// function is intentionally the honest equivalent (Floyd-style sampling from
/// `rand`) whose cost is charged to the simulated clock.
///
/// # Panics
///
/// Panics if `k > d`.
pub fn random_k_indices<R: Rng + ?Sized>(rng: &mut R, d: usize, k: usize) -> Vec<u32> {
    assert!(k <= d, "cannot sample {k} indices from {d} elements");
    let mut idx: Vec<u32> = sample(rng, d, k).into_iter().map(|i| i as u32).collect();
    idx.sort_unstable();
    idx
}

/// Gathers the values at `indices` from a tensor (the `sparsify` helper).
///
/// # Panics
///
/// Panics if any index is out of bounds.
pub fn gather(tensor: &Tensor, indices: &[u32]) -> Vec<f32> {
    let mut out = vec![0.0f32; indices.len()];
    crate::simd::gather_f32(tensor.as_slice(), indices, &mut out);
    out
}

/// Builds a [`SparseSelection`] from a tensor and selected indices.
pub fn sparsify(tensor: &Tensor, indices: Vec<u32>) -> SparseSelection {
    let values = gather(tensor, &indices);
    SparseSelection {
        values,
        indices,
        shape: tensor.shape().clone(),
    }
}

/// Restores a dense tensor from a sparse selection, filling zeros elsewhere
/// (the `desparsify` helper).
///
/// # Panics
///
/// Panics if values/indices lengths differ or an index is out of bounds.
pub fn desparsify(selection: &SparseSelection) -> Tensor {
    assert_eq!(
        selection.values.len(),
        selection.indices.len(),
        "values/indices length mismatch"
    );
    let mut out = Tensor::zeros(selection.shape.clone());
    let data = out.as_mut_slice();
    for (&i, &v) in selection.indices.iter().zip(selection.values.iter()) {
        data[i as usize] = v;
    }
    out
}

/// Estimates the `ratio`-quantile of `|values|` from a random sample of at
/// most `sample_size` elements.
///
/// DGC (§III-B) uses sampled top-k threshold estimation to avoid a full sort;
/// this is the equivalent primitive.
pub fn sampled_abs_threshold<R: Rng + ?Sized>(
    rng: &mut R,
    values: &[f32],
    keep_ratio: f64,
    sample_size: usize,
) -> f32 {
    if values.is_empty() {
        return 0.0;
    }
    let n = values.len().min(sample_size.max(1));
    let mut sampled: Vec<f32> = if values.len() <= n {
        values.iter().map(|v| v.abs()).collect()
    } else {
        sample(rng, values.len(), n)
            .into_iter()
            .map(|i| values[i].abs())
            .collect()
    };
    let keep = ((sampled.len() as f64) * keep_ratio).ceil().max(1.0) as usize;
    let keep = keep.min(sampled.len());
    // Threshold = the keep-th largest absolute value in the sample.
    sampled.sort_unstable_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    sampled[keep - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn top_k_selects_largest_magnitudes() {
        // Figure 4 of the paper: top-3 of this vector is {-3.5, 4.9, 9.0}.
        let g = vec![
            -0.1, 1.2, 3.0, 0.0, -3.5, 4.9, 0.88, 0.0, 0.0, -0.7, 1.0, 0.0, 9.0, -0.3,
        ];
        let idx = top_k_indices(&g, 3);
        assert_eq!(idx, vec![4, 5, 12]);
    }

    #[test]
    fn top_k_edge_cases() {
        let g = vec![1.0, 2.0, 3.0];
        assert_eq!(top_k_indices(&g, 0), Vec::<u32>::new());
        assert_eq!(top_k_indices(&g, 3), vec![0, 1, 2]);
        assert_eq!(top_k_indices(&g, 10), vec![0, 1, 2]);
        assert_eq!(top_k_indices(&[], 2), Vec::<u32>::new());
    }

    #[test]
    fn top_k_partition_is_correct_on_random_data() {
        let mut rng = StdRng::seed_from_u64(7);
        use rand::Rng;
        let g: Vec<f32> = (0..500).map(|_| rng.gen_range(-10.0..10.0)).collect();
        let k = 50;
        let idx = top_k_indices(&g, k);
        assert_eq!(idx.len(), k);
        let min_kept = idx
            .iter()
            .map(|&i| g[i as usize].abs())
            .fold(f32::INFINITY, f32::min);
        let selected: std::collections::HashSet<u32> = idx.iter().copied().collect();
        for (i, v) in g.iter().enumerate() {
            if !selected.contains(&(i as u32)) {
                assert!(v.abs() <= min_kept + 1e-6);
            }
        }
    }

    #[test]
    fn top_k_breaks_ties_towards_lower_indices() {
        let g = vec![1.0, -1.0, 1.0, -1.0];
        assert_eq!(top_k_indices(&g, 2), vec![0, 1]);
        assert_eq!(top_k_indices(&g, 3), vec![0, 1, 2]);
        // Mixed: one strictly larger element plus two-way ties at 1.0.
        let g = vec![1.0, 2.0, -1.0, 1.0];
        assert_eq!(top_k_indices(&g, 2), vec![0, 1]);
    }

    #[test]
    fn top_k_with_reuses_scratch_and_matches() {
        let mut rng = StdRng::seed_from_u64(11);
        use rand::Rng;
        let g: Vec<f32> = (0..300).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let mut scratch = Vec::new();
        for k in [1, 7, 50, 299] {
            let pooled = top_k_indices_with(&g, k, &mut scratch);
            assert_eq!(pooled, top_k_indices(&g, k), "k = {k}");
        }
        assert!(scratch.capacity() >= g.len());
    }

    #[test]
    fn top_k_handles_negative_zero_and_denormals() {
        let g = vec![-0.0, 1.0e-42, 0.0, -1.0e-42, 2.0e-42];
        // |2e-42| > |1e-42| == |-1e-42| > |±0|, ties to lower index.
        assert_eq!(top_k_indices(&g, 2), vec![1, 4]);
        assert_eq!(top_k_indices(&g, 3), vec![1, 3, 4]);
    }

    #[test]
    fn threshold_selection() {
        let g = vec![0.5, -2.0, 1.0, -0.1];
        assert_eq!(threshold_indices(&g, 1.0), vec![1, 2]);
        assert_eq!(threshold_indices(&g, 10.0), Vec::<u32>::new());
        assert_eq!(threshold_indices(&g, 0.0).len(), 4);
    }

    #[test]
    fn random_k_is_distinct_sorted_in_range() {
        let mut rng = StdRng::seed_from_u64(42);
        let idx = random_k_indices(&mut rng, 1000, 100);
        assert_eq!(idx.len(), 100);
        assert!(idx.windows(2).all(|w| w[0] < w[1]));
        assert!(idx.iter().all(|&i| (i as usize) < 1000));
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn random_k_rejects_oversample() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = random_k_indices(&mut rng, 3, 4);
    }

    #[test]
    fn sparsify_desparsify_roundtrip() {
        let t = Tensor::new(vec![1.0, 0.0, -2.0, 3.0], Shape::matrix(2, 2));
        let sel = sparsify(&t, vec![0, 2, 3]);
        assert_eq!(sel.values, vec![1.0, -2.0, 3.0]);
        let restored = desparsify(&sel);
        assert_eq!(restored.shape(), t.shape());
        assert_eq!(restored.as_slice(), &[1.0, 0.0, -2.0, 3.0]);
    }

    #[test]
    fn desparsify_fills_zeros() {
        let sel = SparseSelection {
            values: vec![5.0],
            indices: vec![1],
            shape: Shape::vector(3),
        };
        assert_eq!(desparsify(&sel).as_slice(), &[0.0, 5.0, 0.0]);
    }

    #[test]
    fn sampled_threshold_brackets_exact_quantile() {
        let mut rng = StdRng::seed_from_u64(3);
        let g: Vec<f32> = (0..10_000).map(|i| (i as f32) / 10_000.0).collect();
        // Keep top 10%: exact threshold is 0.9; sampling should land close.
        let t = sampled_abs_threshold(&mut rng, &g, 0.1, 2000);
        assert!((t - 0.9).abs() < 0.05, "threshold {t} too far from 0.9");
    }

    #[test]
    fn sampled_threshold_small_inputs() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(sampled_abs_threshold(&mut rng, &[], 0.5, 10), 0.0);
        let one = sampled_abs_threshold(&mut rng, &[-2.0], 0.01, 10);
        assert_eq!(one, 2.0);
    }
}
