//! Tensor shapes.

use std::fmt;

/// The shape of a [`crate::Tensor`]: an ordered list of dimension sizes.
///
/// A scalar has the empty shape `[]`, a vector of length `d` has shape `[d]`,
/// and a matrix with `m` rows and `l` columns has shape `[m, l]`.
///
/// # Example
///
/// ```
/// use grace_tensor::Shape;
///
/// let s = Shape::new(vec![4, 3]);
/// assert_eq!(s.len(), 12);
/// assert_eq!(s.rank(), 2);
/// ```
#[derive(Debug, PartialEq, Eq, Hash)]
pub struct Shape(Vec<usize>);

impl Clone for Shape {
    fn clone(&self) -> Self {
        Shape(self.0.clone())
    }

    // Forwarding to `Vec::clone_from` lets pooled staging buffers reuse the
    // existing dimension allocation instead of freeing and reallocating it.
    fn clone_from(&mut self, source: &Self) {
        self.0.clone_from(&source.0);
    }
}

impl Shape {
    /// Creates a shape from dimension sizes.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape(dims)
    }

    /// The shape of a scalar (rank 0, one element).
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// The shape of a vector with `d` elements.
    pub fn vector(d: usize) -> Self {
        Shape(vec![d])
    }

    /// The shape of a matrix with `rows` rows and `cols` columns.
    pub fn matrix(rows: usize, cols: usize) -> Self {
        Shape(vec![rows, cols])
    }

    /// Total number of elements (product of all dimensions; 1 for a scalar).
    pub fn len(&self) -> usize {
        self.0.iter().product()
    }

    /// Whether the shape contains zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// The dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Interprets the shape as a 2-D matrix `(rows, cols)`.
    ///
    /// Rank-2 shapes map directly; a rank-1 shape `[d]` maps to `(d, 1)`;
    /// higher-rank shapes fold all trailing dimensions into the column count.
    /// This is how low-rank compressors (PowerSGD, §III-D) view gradients as
    /// matrices.
    ///
    /// # Example
    ///
    /// ```
    /// use grace_tensor::Shape;
    /// assert_eq!(Shape::new(vec![4, 3, 2]).as_matrix(), (4, 6));
    /// assert_eq!(Shape::vector(7).as_matrix(), (7, 1));
    /// ```
    pub fn as_matrix(&self) -> (usize, usize) {
        match self.0.len() {
            0 => (1, 1),
            1 => (self.0[0], 1),
            _ => (self.0[0], self.0[1..].iter().product()),
        }
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_has_one_element() {
        let s = Shape::scalar();
        assert_eq!(s.len(), 1);
        assert_eq!(s.rank(), 0);
        assert!(!s.is_empty());
    }

    #[test]
    fn vector_and_matrix_constructors() {
        assert_eq!(Shape::vector(5).dims(), &[5]);
        assert_eq!(Shape::matrix(2, 3).dims(), &[2, 3]);
        assert_eq!(Shape::matrix(2, 3).len(), 6);
    }

    #[test]
    fn as_matrix_folds_trailing_dims() {
        assert_eq!(Shape::new(vec![2, 3, 4]).as_matrix(), (2, 12));
        assert_eq!(Shape::matrix(5, 7).as_matrix(), (5, 7));
        assert_eq!(Shape::scalar().as_matrix(), (1, 1));
    }

    #[test]
    fn zero_dim_is_empty() {
        assert!(Shape::new(vec![0, 3]).is_empty());
        assert_eq!(Shape::new(vec![0, 3]).len(), 0);
    }

    #[test]
    fn display_formats_dims() {
        assert_eq!(Shape::new(vec![4, 3]).to_string(), "[4x3]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }

    #[test]
    fn conversions_from_slices() {
        let s: Shape = vec![1, 2].into();
        assert_eq!(s, Shape::new(vec![1, 2]));
        let s2: Shape = (&[3usize, 4][..]).into();
        assert_eq!(s2.dims(), &[3, 4]);
    }
}
