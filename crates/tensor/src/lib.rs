//! Dense tensor substrate for the GRACE reproduction.
//!
//! The paper's framework operates on layer-wise gradient tensors produced by a
//! deep-learning toolkit. This crate provides the minimal-but-complete tensor
//! machinery that every other crate in the workspace builds on:
//!
//! - [`Tensor`]: a dense `f32` tensor with an explicit [`Shape`], elementwise
//!   arithmetic, norms and reductions;
//! - [`select`]: top-k / threshold / random-k element selection plus the
//!   `sparsify`/`desparsify` helpers of the GRACE API (§IV-B);
//! - [`pack`]: bit-packing (`pack`/`unpack` helpers of the GRACE API) used by
//!   the quantization compressors for byte-exact payloads;
//! - [`linalg`]: the small dense linear algebra needed by low-rank
//!   compressors (matmul, Gram–Schmidt orthonormalization);
//! - [`simd`]: runtime-dispatched (SSE2/AVX2/scalar) kernels for the codec
//!   hot paths, bit-identical across dispatch levels;
//! - [`sketch`]: a Greenwald–Khanna quantile sketch (used by SketchML);
//! - [`rng`]: seeded RNG construction so every experiment is reproducible.
//!
//! # Example
//!
//! ```
//! use grace_tensor::Tensor;
//!
//! let g = Tensor::from_vec(vec![3.0, -4.0, 0.0, 1.0]);
//! assert_eq!(g.norm2(), (9.0f32 + 16.0 + 1.0).sqrt());
//! assert_eq!(g.norm_inf(), 4.0);
//! ```

pub mod coding;
pub mod linalg;
pub mod pack;
pub mod rng;
pub mod select;
pub mod shape;
pub mod simd;
pub mod sketch;
pub mod stats;
mod tensor;

pub use shape::Shape;
pub use tensor::Tensor;
