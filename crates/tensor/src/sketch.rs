//! Greenwald–Khanna ε-approximate quantile sketch.
//!
//! SketchML (§III-C) buckets non-zero gradient values with a *non-uniform
//! quantile sketch* (the paper cites Greenwald & Khanna, SIGMOD'01) and
//! transmits each value as its bucket index. This module implements the GK
//! summary with the standard `2εn` capacity invariant plus the derived
//! equi-depth bucketizer used by our SketchML compressor.

/// One entry of the GK summary.
#[derive(Debug, Clone, Copy)]
struct GkEntry {
    value: f32,
    /// g: difference between the minimum ranks of this and the previous entry.
    g: u64,
    /// Δ: uncertainty of this entry's rank.
    delta: u64,
}

/// A Greenwald–Khanna sketch answering rank/quantile queries within `ε·n`.
///
/// # Example
///
/// ```
/// use grace_tensor::sketch::GkSketch;
///
/// let mut sk = GkSketch::new(0.01);
/// for i in 0..1000 {
///     sk.insert(i as f32);
/// }
/// let median = sk.quantile(0.5);
/// assert!((median - 500.0).abs() <= 20.0);
/// ```
#[derive(Debug, Clone)]
pub struct GkSketch {
    epsilon: f64,
    entries: Vec<GkEntry>,
    count: u64,
}

impl GkSketch {
    /// Creates a sketch with rank-error tolerance `epsilon` in `(0, 0.5)`.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is out of range.
    pub fn new(epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon < 0.5,
            "epsilon must be in (0, 0.5), got {epsilon}"
        );
        GkSketch {
            epsilon,
            entries: Vec::new(),
            count: 0,
        }
    }

    /// Number of values inserted so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of summary entries currently retained (the sketch's size).
    pub fn summary_len(&self) -> usize {
        self.entries.len()
    }

    /// Inserts one value.
    ///
    /// Non-finite values are ignored (gradients are expected to be finite; a
    /// NaN would poison every comparison).
    pub fn insert(&mut self, value: f32) {
        if !value.is_finite() {
            return;
        }
        self.count += 1;
        let pos = self.entries.partition_point(|e| e.value < value);
        let delta = if pos == 0 || pos == self.entries.len() {
            0
        } else {
            ((2.0 * self.epsilon * self.count as f64).floor() as u64).saturating_sub(1)
        };
        self.entries.insert(pos, GkEntry { value, g: 1, delta });
        // Compress periodically to keep the summary small.
        let cap = (1.0 / (2.0 * self.epsilon)).ceil() as usize;
        if self.entries.len() > 3 * cap {
            self.compress();
        }
    }

    /// Inserts every value of a slice.
    pub fn extend_from_slice(&mut self, values: &[f32]) {
        for &v in values {
            self.insert(v);
        }
    }

    fn compress(&mut self) {
        if self.entries.len() < 3 {
            return;
        }
        let threshold = (2.0 * self.epsilon * self.count as f64).floor() as u64;
        let mut out: Vec<GkEntry> = Vec::with_capacity(self.entries.len());
        out.push(self.entries[0]);
        for i in 1..self.entries.len() {
            let e = self.entries[i];
            // Merge `last` into `e` when the band condition allows; keep first
            // and last entries exact so min/max queries stay exact.
            let is_edge = i == self.entries.len() - 1 || out.len() == 1;
            let last = out.last_mut().expect("out is non-empty");
            if !is_edge && last.g + e.g + e.delta < threshold {
                let merged_g = last.g + e.g;
                *last = GkEntry {
                    value: e.value,
                    g: merged_g,
                    delta: e.delta,
                };
            } else {
                out.push(e);
            }
        }
        self.entries = out;
    }

    /// Returns a value whose rank is within `ε·n` of `q·n`, for `q ∈ [0, 1]`.
    ///
    /// Returns `0.0` if the sketch is empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f32 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.entries.is_empty() {
            return 0.0;
        }
        let rank = (q * self.count as f64).ceil().max(1.0);
        let target = rank + self.epsilon * self.count as f64;
        let mut rmin = 0u64;
        let mut prev = self.entries[0].value;
        for e in &self.entries {
            if (rmin + e.g + e.delta) as f64 > target {
                return prev;
            }
            rmin += e.g;
            prev = e.value;
        }
        prev
    }

    /// Returns `buckets + 1` boundary values splitting the distribution into
    /// (approximately) equi-depth buckets: `boundaries[0] = min`,
    /// `boundaries[buckets] = max`.
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0`.
    pub fn equi_depth_boundaries(&self, buckets: usize) -> Vec<f32> {
        assert!(buckets > 0, "need at least one bucket");
        (0..=buckets)
            .map(|i| self.quantile(i as f64 / buckets as f64))
            .collect()
    }
}

/// Maps a value to its bucket in a sorted boundary list produced by
/// [`GkSketch::equi_depth_boundaries`]; values outside the range clamp to the
/// first/last bucket.
pub fn bucket_of(boundaries: &[f32], value: f32) -> usize {
    debug_assert!(boundaries.len() >= 2);
    let buckets = boundaries.len() - 1;
    let pos = boundaries[1..buckets].partition_point(|b| *b <= value);
    pos.min(buckets - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn quantiles_on_uniform_stream() {
        let mut sk = GkSketch::new(0.01);
        for i in 0..10_000 {
            sk.insert(i as f32);
        }
        for &(q, expect) in &[(0.1, 1000.0), (0.5, 5000.0), (0.9, 9000.0)] {
            let got = sk.quantile(q);
            assert!(
                (got - expect).abs() <= 0.02 * 10_000.0,
                "q={q}: got {got}, expected ~{expect}"
            );
        }
    }

    #[test]
    fn quantiles_on_shuffled_gaussianlike_stream() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sk = GkSketch::new(0.02);
        let mut values: Vec<f32> = (0..5000).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        sk.extend_from_slice(&values);
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let exact_median = values[2500];
        let approx = sk.quantile(0.5);
        let rank = values.partition_point(|v| *v < approx);
        assert!(
            (rank as i64 - 2500).unsigned_abs() <= (0.04 * 5000.0) as u64,
            "median rank error too large: rank={rank}, exact median {exact_median}, got {approx}"
        );
    }

    #[test]
    fn summary_stays_sublinear() {
        let mut sk = GkSketch::new(0.01);
        for i in 0..100_000 {
            sk.insert((i % 977) as f32);
        }
        assert!(
            sk.summary_len() < 2000,
            "summary too large: {}",
            sk.summary_len()
        );
        assert_eq!(sk.count(), 100_000);
    }

    #[test]
    fn min_and_max_are_exact() {
        let mut sk = GkSketch::new(0.05);
        let values = [4.0, -7.5, 3.0, 100.0, -2.0, 0.5];
        sk.extend_from_slice(&values);
        assert_eq!(sk.quantile(0.0), -7.5);
        assert_eq!(sk.quantile(1.0), 100.0);
    }

    #[test]
    fn empty_sketch_returns_zero() {
        let sk = GkSketch::new(0.1);
        assert_eq!(sk.quantile(0.5), 0.0);
        assert_eq!(sk.count(), 0);
    }

    #[test]
    fn ignores_non_finite() {
        let mut sk = GkSketch::new(0.1);
        sk.insert(f32::NAN);
        sk.insert(f32::INFINITY);
        sk.insert(1.0);
        assert_eq!(sk.count(), 1);
        assert_eq!(sk.quantile(0.5), 1.0);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_bad_epsilon() {
        let _ = GkSketch::new(0.7);
    }

    #[test]
    fn equi_depth_bucketing() {
        let mut sk = GkSketch::new(0.01);
        for i in 0..1000 {
            sk.insert(i as f32);
        }
        let bounds = sk.equi_depth_boundaries(4);
        assert_eq!(bounds.len(), 5);
        assert!(bounds.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(bucket_of(&bounds, -100.0), 0);
        assert_eq!(bucket_of(&bounds, 2000.0), 3);
        let b_mid = bucket_of(&bounds, 510.0);
        assert!(b_mid == 1 || b_mid == 2, "mid bucket was {b_mid}");
    }
}
