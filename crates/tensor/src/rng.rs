//! Seeded random-number-generator helpers.
//!
//! Every stochastic component in the workspace (data generation, weight
//! initialisation, randomized compressors, mini-batch sampling) takes an
//! explicit RNG so experiments are bit-reproducible across runs and across
//! the sequential/threaded execution modes. This module centralises RNG
//! construction and the derivation of per-worker / per-tensor substreams.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates the workspace-standard RNG from a 64-bit seed.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives an independent substream from `(seed, stream)`.
///
/// Used to give each worker (and each named tensor within a worker) its own
/// deterministic stream, so adding a worker does not perturb the randomness
/// that other workers observe.
///
/// # Example
///
/// ```
/// use grace_tensor::rng::substream;
/// use rand::Rng;
///
/// let mut a = substream(7, 0);
/// let mut b = substream(7, 1);
/// let (x, y): (f64, f64) = (a.gen(), b.gen());
/// assert_ne!(x, y);
/// ```
pub fn substream(seed: u64, stream: u64) -> StdRng {
    // SplitMix64 finalizer decorrelates nearby (seed, stream) pairs.
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    StdRng::seed_from_u64(z)
}

/// Derives a substream keyed by a string name (e.g. a tensor name).
pub fn named_substream(seed: u64, name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    substream(seed, h)
}

/// Fills a slice with samples from `N(0, std²)`.
pub fn fill_gaussian<R: Rng + ?Sized>(rng: &mut R, out: &mut [f32], std: f32) {
    use rand_distr::{Distribution, Normal};
    let normal = Normal::new(0.0f32, std.max(f32::MIN_POSITIVE)).expect("std must be finite");
    for v in out {
        *v = normal.sample(rng);
    }
}

/// Fills a slice with samples from `U(lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn fill_uniform<R: Rng + ?Sized>(rng: &mut R, out: &mut [f32], lo: f32, hi: f32) {
    assert!(lo < hi, "uniform range must be non-empty");
    for v in out {
        *v = rng.gen_range(lo..hi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(5);
        let mut b = seeded(5);
        let (x, y): (u64, u64) = (a.gen(), b.gen());
        assert_eq!(x, y);
    }

    #[test]
    fn substreams_are_independent_and_deterministic() {
        let mut a1 = substream(1, 0);
        let mut a2 = substream(1, 0);
        let mut b = substream(1, 1);
        let (x1, x2, y): (u64, u64, u64) = (a1.gen(), a2.gen(), b.gen());
        assert_eq!(x1, x2);
        assert_ne!(x1, y);
    }

    #[test]
    fn named_substreams_differ_by_name() {
        let mut a = named_substream(1, "layer0/w");
        let mut b = named_substream(1, "layer0/b");
        let (x, y): (u64, u64) = (a.gen(), b.gen());
        assert_ne!(x, y);
    }

    #[test]
    fn gaussian_fill_has_plausible_moments() {
        let mut rng = seeded(11);
        let mut buf = vec![0.0f32; 20_000];
        fill_gaussian(&mut rng, &mut buf, 2.0);
        let mean = buf.iter().sum::<f32>() / buf.len() as f32;
        let var = buf.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / buf.len() as f32;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn uniform_fill_in_range() {
        let mut rng = seeded(3);
        let mut buf = vec![0.0f32; 1000];
        fill_uniform(&mut rng, &mut buf, -0.5, 0.5);
        assert!(buf.iter().all(|v| (-0.5..0.5).contains(v)));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn uniform_rejects_empty_range() {
        let mut rng = seeded(3);
        fill_uniform(&mut rng, &mut [0.0], 1.0, 1.0);
    }
}
