//! Entropy coding for quantized code-word streams.
//!
//! Gajjala et al. (the paper's reference 81) show that Huffman-coding the
//! code-words of quantized gradients (QSGD levels, TernGrad trits, …) packs
//! them well below their fixed bit-width, because gradient code-words are
//! heavily skewed toward zero. This module provides a canonical Huffman
//! codec over `u32` symbols with a self-describing header, used by the
//! entropy-coded compressor variants.

use std::collections::BinaryHeap;

/// A canonical Huffman code over the symbols `0..=max_symbol`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HuffmanCode {
    /// Code length (bits) per symbol; 0 = symbol unused.
    lengths: Vec<u8>,
    /// Canonical code value per symbol (valid when length > 0).
    codes: Vec<u32>,
}

const MAX_CODE_LEN: u8 = 32;

impl HuffmanCode {
    /// Builds a canonical Huffman code from symbol frequencies.
    ///
    /// Symbols with zero frequency get no code. A single-symbol alphabet
    /// gets a 1-bit code.
    ///
    /// # Panics
    ///
    /// Panics if `freqs` is empty or all-zero.
    pub fn from_frequencies(freqs: &[u64]) -> Self {
        assert!(!freqs.is_empty(), "need at least one symbol");
        let used: Vec<usize> = (0..freqs.len()).filter(|&s| freqs[s] > 0).collect();
        assert!(!used.is_empty(), "at least one symbol must occur");
        let mut lengths = vec![0u8; freqs.len()];
        if used.len() == 1 {
            lengths[used[0]] = 1;
            return Self::from_lengths(lengths);
        }
        // Standard Huffman tree by min-heap of (weight, node).
        #[derive(PartialEq, Eq)]
        struct Node {
            weight: u64,
            id: usize,
        }
        impl Ord for Node {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                // Reverse for a min-heap; tie-break on id for determinism.
                other.weight.cmp(&self.weight).then(other.id.cmp(&self.id))
            }
        }
        impl PartialOrd for Node {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        let mut heap = BinaryHeap::new();
        // Tree nodes: leaves are symbol ids, internal nodes appended after.
        let mut parents: Vec<usize> = vec![usize::MAX; used.len()];
        for (leaf, &s) in used.iter().enumerate() {
            heap.push(Node {
                weight: freqs[s],
                id: leaf,
            });
        }
        let mut next_id = used.len();
        while heap.len() > 1 {
            let a = heap.pop().expect("len > 1");
            let b = heap.pop().expect("len > 1");
            parents.push(usize::MAX);
            parents[a.id] = next_id;
            parents[b.id] = next_id;
            heap.push(Node {
                weight: a.weight + b.weight,
                id: next_id,
            });
            next_id += 1;
        }
        // Depth of each leaf = code length.
        for (leaf, &s) in used.iter().enumerate() {
            let mut depth = 0u8;
            let mut node = leaf;
            while parents[node] != usize::MAX {
                node = parents[node];
                depth += 1;
            }
            lengths[s] = depth.clamp(1, MAX_CODE_LEN);
        }
        Self::from_lengths(lengths)
    }

    /// Builds the canonical code from per-symbol lengths.
    fn from_lengths(lengths: Vec<u8>) -> Self {
        // Canonical assignment: sort by (length, symbol).
        let mut order: Vec<usize> = (0..lengths.len()).filter(|&s| lengths[s] > 0).collect();
        order.sort_by_key(|&s| (lengths[s], s));
        let mut codes = vec![0u32; lengths.len()];
        let mut code = 0u32;
        let mut prev_len = 0u8;
        for &s in &order {
            code <<= lengths[s] - prev_len;
            codes[s] = code;
            code += 1;
            prev_len = lengths[s];
        }
        HuffmanCode { lengths, codes }
    }

    /// The code lengths (the self-describing header content).
    pub fn lengths(&self) -> &[u8] {
        &self.lengths
    }

    /// Encodes a symbol stream. Returns `(bits, bit_count)`.
    ///
    /// # Panics
    ///
    /// Panics if a symbol has no code.
    pub fn encode(&self, symbols: &[u32]) -> (Vec<u8>, u64) {
        let mut out = Vec::new();
        let mut acc: u64 = 0;
        let mut nbits: u32 = 0;
        let mut total: u64 = 0;
        for &s in symbols {
            let s = s as usize;
            let len = self.lengths[s];
            assert!(len > 0, "symbol {s} has no code");
            acc = (acc << len) | self.codes[s] as u64;
            nbits += len as u32;
            total += len as u64;
            while nbits >= 8 {
                nbits -= 8;
                out.push((acc >> nbits) as u8);
            }
        }
        if nbits > 0 {
            out.push((acc << (8 - nbits)) as u8);
        }
        (out, total)
    }

    /// Decodes `count` symbols from a bit stream produced by [`encode`].
    ///
    /// # Panics
    ///
    /// Panics on a malformed stream (ran out of bits or no matching code).
    ///
    /// [`encode`]: HuffmanCode::encode
    pub fn decode(&self, bits: &[u8], count: usize) -> Vec<u32> {
        // Build a (length, code) -> symbol map; linear scan per bit is fine
        // for the ≤ 256-symbol alphabets used by gradient quantizers.
        let mut by_len: Vec<Vec<(u32, u32)>> = vec![Vec::new(); MAX_CODE_LEN as usize + 1];
        for (s, &len) in self.lengths.iter().enumerate() {
            if len > 0 {
                by_len[len as usize].push((self.codes[s], s as u32));
            }
        }
        let mut out = Vec::with_capacity(count);
        let mut acc: u32 = 0;
        let mut acc_len: u8 = 0;
        let mut pos = 0usize; // bit position
        let total_bits = bits.len() * 8;
        'outer: while out.len() < count {
            loop {
                assert!(pos < total_bits, "huffman stream truncated");
                let byte = bits[pos / 8];
                let bit = (byte >> (7 - (pos % 8))) & 1;
                pos += 1;
                acc = (acc << 1) | bit as u32;
                acc_len += 1;
                for &(code, sym) in &by_len[acc_len as usize] {
                    if code == acc {
                        out.push(sym);
                        acc = 0;
                        acc_len = 0;
                        continue 'outer;
                    }
                }
                assert!(acc_len < MAX_CODE_LEN, "no matching huffman code");
            }
        }
        out
    }

    /// Convenience: builds a code from a stream and encodes it, returning
    /// `(lengths header, payload bits, bit count)`.
    pub fn encode_stream(symbols: &[u32], alphabet: usize) -> (Vec<u8>, Vec<u8>, u64) {
        let mut freqs = vec![0u64; alphabet];
        for &s in symbols {
            freqs[s as usize] += 1;
        }
        if symbols.is_empty() {
            return (vec![0; alphabet], Vec::new(), 0);
        }
        let code = Self::from_frequencies(&freqs);
        let (bits, nbits) = code.encode(symbols);
        (code.lengths().to_vec(), bits, nbits)
    }

    /// Convenience: decodes a stream produced by [`encode_stream`].
    ///
    /// [`encode_stream`]: HuffmanCode::encode_stream
    pub fn decode_stream(lengths: &[u8], bits: &[u8], count: usize) -> Vec<u32> {
        if count == 0 {
            return Vec::new();
        }
        Self::from_lengths(lengths.to_vec()).decode(bits, count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn roundtrip_skewed_stream() {
        // Gradient-like skew: mostly zeros.
        let mut rng = crate::rng::seeded(5);
        let symbols: Vec<u32> = (0..5000)
            .map(|_| {
                let r: f32 = rng.gen();
                if r < 0.85 {
                    0
                } else if r < 0.95 {
                    1
                } else {
                    rng.gen_range(2..8)
                }
            })
            .collect();
        let (lengths, bits, nbits) = HuffmanCode::encode_stream(&symbols, 8);
        let decoded = HuffmanCode::decode_stream(&lengths, &bits, symbols.len());
        assert_eq!(decoded, symbols);
        // Skewed stream beats the fixed 3-bit packing.
        assert!(
            nbits < 3 * symbols.len() as u64,
            "huffman {nbits} bits not below fixed {}",
            3 * symbols.len()
        );
    }

    #[test]
    fn roundtrip_uniform_stream_costs_at_most_fixed_width_plus_one() {
        let symbols: Vec<u32> = (0..4096).map(|i| i % 16).collect();
        let (lengths, bits, nbits) = HuffmanCode::encode_stream(&symbols, 16);
        assert_eq!(
            HuffmanCode::decode_stream(&lengths, &bits, symbols.len()),
            symbols
        );
        assert!(nbits <= 5 * symbols.len() as u64);
    }

    #[test]
    fn single_symbol_alphabet() {
        let symbols = vec![3u32; 100];
        let (lengths, bits, nbits) = HuffmanCode::encode_stream(&symbols, 4);
        assert_eq!(nbits, 100);
        assert_eq!(HuffmanCode::decode_stream(&lengths, &bits, 100), symbols);
    }

    #[test]
    fn empty_stream() {
        let (lengths, bits, nbits) = HuffmanCode::encode_stream(&[], 4);
        assert_eq!(nbits, 0);
        assert!(bits.is_empty());
        assert!(HuffmanCode::decode_stream(&lengths, &bits, 0).is_empty());
    }

    #[test]
    fn canonical_codes_are_prefix_free() {
        let freqs = vec![50u64, 20, 10, 10, 5, 5];
        let code = HuffmanCode::from_frequencies(&freqs);
        let used: Vec<usize> = (0..6).collect();
        for &a in &used {
            for &b in &used {
                if a == b {
                    continue;
                }
                let (la, lb) = (code.lengths[a], code.lengths[b]);
                if la <= lb {
                    let prefix = code.codes[b] >> (lb - la);
                    assert!(prefix != code.codes[a], "code {a} is a prefix of code {b}");
                }
            }
        }
    }

    #[test]
    fn kraft_inequality_holds() {
        let freqs = vec![90u64, 5, 3, 1, 1];
        let code = HuffmanCode::from_frequencies(&freqs);
        let kraft: f64 = code
            .lengths()
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 2f64.powi(-(l as i32)))
            .sum();
        assert!(kraft <= 1.0 + 1e-12, "kraft sum {kraft}");
    }

    #[test]
    fn deterministic_construction() {
        let freqs = vec![10u64, 10, 10, 10];
        let a = HuffmanCode::from_frequencies(&freqs);
        let b = HuffmanCode::from_frequencies(&freqs);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "truncated")]
    fn truncated_stream_panics() {
        let symbols: Vec<u32> = (0..64).map(|i| i % 4).collect();
        let (lengths, bits, _) = HuffmanCode::encode_stream(&symbols, 4);
        let _ = HuffmanCode::decode_stream(&lengths, &bits[..1], symbols.len());
    }
}
