//! Bit-packing primitives (the `pack` / `unpack` helpers of the GRACE API).
//!
//! Quantization compressors reduce each gradient element to a small number of
//! bits; to measure transmitted data volume *byte-exactly* (paper §V-A) the
//! quantized code-words must actually be packed into a dense byte buffer
//! rather than stored one-per-`u32`. The paper notes its own Python
//! implementation does *not* pack ("the data volumes are inflated for
//! quantization methods"); we implement real packing and account both packed
//! and unpacked sizes, which preserves the paper's relative comparisons.

/// Packs `values[i] < 2^bits` code-words of width `bits` (1..=32) into bytes,
/// little-endian within the stream.
///
/// # Panics
///
/// Panics if `bits == 0`, `bits > 32`, or any value needs more than `bits`
/// bits.
///
/// # Example
///
/// ```
/// use grace_tensor::pack::{pack_bits, unpack_bits};
///
/// let words = vec![3u32, 0, 2, 1];
/// let packed = pack_bits(&words, 2);
/// assert_eq!(packed.len(), 1); // 4 values x 2 bits = 1 byte
/// assert_eq!(unpack_bits(&packed, 2, 4), words);
/// ```
pub fn pack_bits(values: &[u32], bits: u32) -> Vec<u8> {
    assert!((1..=32).contains(&bits), "bit width must be in 1..=32");
    let total_bits = values.len() * bits as usize;
    let mut out = vec![0u8; total_bits.div_ceil(8)];
    match bits {
        // Byte-aligned and sub-byte power-of-two widths cover every wire
        // format the compressors emit (sign bitmap, trit/2-bit, nibble,
        // byte-code quantizers, raw index words); they bypass the
        // bit-cursor loop entirely. Output is identical to
        // [`pack_bits_generic`], which stays as the reference (and handles
        // the odd widths).
        1 => {
            validate_fit(values, 1);
            let mut chunks = values.chunks_exact(8);
            for (o, c) in out.iter_mut().zip(chunks.by_ref()) {
                *o = c
                    .iter()
                    .enumerate()
                    .fold(0u8, |acc, (i, &v)| acc | ((v as u8) << i));
            }
            let rem = chunks.remainder();
            if !rem.is_empty() {
                let last = out.last_mut().expect("remainder implies a final byte");
                for (i, &v) in rem.iter().enumerate() {
                    *last |= (v as u8) << i;
                }
            }
        }
        2 => {
            validate_fit(values, 2);
            let mut chunks = values.chunks_exact(4);
            for (o, c) in out.iter_mut().zip(chunks.by_ref()) {
                *o = (c[0] as u8) | ((c[1] as u8) << 2) | ((c[2] as u8) << 4) | ((c[3] as u8) << 6);
            }
            let rem = chunks.remainder();
            if !rem.is_empty() {
                let last = out.last_mut().expect("remainder implies a final byte");
                for (i, &v) in rem.iter().enumerate() {
                    *last |= (v as u8) << (2 * i);
                }
            }
        }
        4 => {
            validate_fit(values, 4);
            let mut chunks = values.chunks_exact(2);
            for (o, c) in out.iter_mut().zip(chunks.by_ref()) {
                *o = (c[0] as u8) | ((c[1] as u8) << 4);
            }
            if let [v] = chunks.remainder() {
                let last = out.last_mut().expect("remainder implies a final byte");
                *last = *v as u8;
            }
        }
        8 => {
            validate_fit(values, 8);
            crate::simd::narrow_to_bytes(values, &mut out);
        }
        16 => {
            validate_fit(values, 16);
            for (o, &v) in out.chunks_exact_mut(2).zip(values) {
                o.copy_from_slice(&(v as u16).to_le_bytes());
            }
        }
        32 => {
            for (o, &v) in out.chunks_exact_mut(4).zip(values) {
                o.copy_from_slice(&v.to_le_bytes());
            }
        }
        _ => pack_bits_generic_into(values, bits, &mut out),
    }
    out
}

/// Validates that every value fits in `bits` bits with one branch-free
/// OR-reduction; only on failure does it rescan to panic at the *first*
/// offending value with the same message as the generic path.
fn validate_fit(values: &[u32], bits: u32) {
    let mask: u32 = if bits == 32 {
        u32::MAX
    } else {
        (1 << bits) - 1
    };
    let all = values.iter().fold(0u32, |acc, &v| acc | v);
    if all & !mask != 0 {
        for &v in values {
            assert!(v <= mask, "value {v} does not fit in {bits} bits");
        }
    }
}

/// The reference bit-cursor implementation of [`pack_bits`], kept for the
/// odd widths and as the semantics oracle the fast paths are tested against.
#[doc(hidden)]
pub fn pack_bits_generic(values: &[u32], bits: u32) -> Vec<u8> {
    assert!((1..=32).contains(&bits), "bit width must be in 1..=32");
    let total_bits = values.len() * bits as usize;
    let mut out = vec![0u8; total_bits.div_ceil(8)];
    pack_bits_generic_into(values, bits, &mut out);
    out
}

fn pack_bits_generic_into(values: &[u32], bits: u32, out: &mut [u8]) {
    let mask: u64 = if bits == 32 {
        u32::MAX as u64
    } else {
        (1u64 << bits) - 1
    };
    let mut bitpos = 0usize;
    for &v in values {
        assert!((v as u64) <= mask, "value {v} does not fit in {bits} bits");
        let mut remaining = bits as usize;
        let mut val = v as u64;
        while remaining > 0 {
            let byte = bitpos / 8;
            let offset = bitpos % 8;
            let take = (8 - offset).min(remaining);
            out[byte] |= ((val & ((1u64 << take) - 1)) as u8) << offset;
            val >>= take;
            bitpos += take;
            remaining -= take;
        }
    }
}

/// Unpacks `count` code-words of width `bits` from a buffer produced by
/// [`pack_bits`].
///
/// # Panics
///
/// Panics if the buffer is too short to contain `count` values.
pub fn unpack_bits(packed: &[u8], bits: u32, count: usize) -> Vec<u32> {
    let mut out = Vec::with_capacity(count);
    unpack_bits_into(packed, bits, count, &mut out);
    out
}

/// Non-allocating variant of [`unpack_bits`]: clears `out` and unpacks into
/// it, reusing its capacity. Steady-state callers (the aggregation merge
/// path) keep one scratch vector per stream and never allocate once it has
/// grown to the largest tensor's size.
///
/// # Panics
///
/// Panics if the buffer is too short to contain `count` values.
pub fn unpack_bits_into(packed: &[u8], bits: u32, count: usize, out: &mut Vec<u32>) {
    assert!((1..=32).contains(&bits), "bit width must be in 1..=32");
    let need = (count * bits as usize).div_ceil(8);
    assert!(
        packed.len() >= need,
        "packed buffer too short: have {} bytes, need {need}",
        packed.len()
    );
    out.clear();
    out.reserve(count);
    match bits {
        // Mirrors of the pack fast paths; identical output to the generic
        // bit-cursor loop below.
        1 => {
            for i in 0..count {
                out.push(u32::from((packed[i / 8] >> (i % 8)) & 1));
            }
        }
        2 => {
            for i in 0..count {
                out.push(u32::from((packed[i / 4] >> (2 * (i % 4))) & 0b11));
            }
        }
        4 => {
            for i in 0..count {
                out.push(u32::from((packed[i / 2] >> (4 * (i % 2))) & 0x0F));
            }
        }
        8 => {
            out.resize(count, 0);
            crate::simd::widen_from_bytes(&packed[..count], out);
        }
        16 => {
            for c in packed[..count * 2].chunks_exact(2) {
                out.push(u32::from(u16::from_le_bytes([c[0], c[1]])));
            }
        }
        32 => {
            for c in packed[..count * 4].chunks_exact(4) {
                out.push(u32::from_le_bytes([c[0], c[1], c[2], c[3]]));
            }
        }
        _ => unpack_bits_generic_into(packed, bits, count, out),
    }
}

/// The reference bit-cursor implementation of [`unpack_bits_into`], kept for
/// the odd widths and as the semantics oracle for the fast paths. Assumes
/// the caller already validated the width, buffer length, and cleared `out`.
#[doc(hidden)]
pub fn unpack_bits_generic_into(packed: &[u8], bits: u32, count: usize, out: &mut Vec<u32>) {
    let mut bitpos = 0usize;
    for _ in 0..count {
        let mut val: u64 = 0;
        let mut got = 0usize;
        while got < bits as usize {
            let byte = bitpos / 8;
            let offset = bitpos % 8;
            let take = (8 - offset).min(bits as usize - got);
            let chunk = ((packed[byte] >> offset) as u64) & ((1u64 << take) - 1);
            val |= chunk << got;
            got += take;
            bitpos += take;
        }
        out.push(val as u32);
    }
}

/// Packs a sign pattern (`true` = negative) into a bitmap, one bit per element.
///
/// Used by SignSGD-family compressors whose payload is exactly one bit per
/// gradient element (§III-A).
pub fn pack_signs(signs: &[bool]) -> Vec<u8> {
    let mut out = vec![0u8; signs.len().div_ceil(8)];
    let mut chunks = signs.chunks_exact(8);
    for (o, c) in out.iter_mut().zip(chunks.by_ref()) {
        *o = c
            .iter()
            .enumerate()
            .fold(0u8, |acc, (i, &s)| acc | ((s as u8) << i));
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let last = out.last_mut().expect("remainder implies a final byte");
        for (i, &s) in rem.iter().enumerate() {
            *last |= (s as u8) << i;
        }
    }
    out
}

/// Unpacks a sign bitmap produced by [`pack_signs`].
///
/// # Panics
///
/// Panics if the buffer is too short to contain `count` bits.
pub fn unpack_signs(packed: &[u8], count: usize) -> Vec<bool> {
    let need = count.div_ceil(8);
    assert!(
        packed.len() >= need,
        "packed buffer too short: have {} bytes, need {need}",
        packed.len()
    );
    (0..count)
        .map(|i| (packed[i / 8] >> (i % 8)) & 1 != 0)
        .collect()
}

/// Number of bytes needed to pack `count` values of width `bits`.
pub fn packed_len(count: usize, bits: u32) -> usize {
    (count * bits as usize).div_ceil(8)
}

/// Serializes `f32` values to little-endian bytes.
pub fn f32s_to_bytes(values: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 4);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Deserializes little-endian bytes back to `f32` values.
///
/// # Panics
///
/// Panics if the byte length is not a multiple of 4.
pub fn bytes_to_f32s(bytes: &[u8]) -> Vec<f32> {
    assert!(
        bytes.len().is_multiple_of(4),
        "byte length must be a multiple of 4"
    );
    bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

/// Serializes `u32` values to little-endian bytes.
pub fn u32s_to_bytes(values: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 4);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Deserializes little-endian bytes back to `u32` values.
///
/// # Panics
///
/// Panics if the byte length is not a multiple of 4.
pub fn bytes_to_u32s(bytes: &[u8]) -> Vec<u32> {
    assert!(
        bytes.len().is_multiple_of(4),
        "byte length must be a multiple of 4"
    );
    bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

/// CRC32 (IEEE 802.3, reflected polynomial `0xEDB88320`) of `bytes`.
///
/// Used by the payload codec to detect wire corruption: a flipped bit in a
/// framed payload stream must surface as an explicit decode error, never as
/// silently divergent replicas. Matches the common `crc32`/zlib checksum, so
/// values can be cross-checked with external tools.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard zlib/IEEE reference values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let data = b"gradient payload bytes".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), clean, "flip at {byte}:{bit} undetected");
            }
        }
    }

    #[test]
    fn roundtrip_small_widths() {
        for bits in 1..=8u32 {
            let max = if bits == 32 {
                u32::MAX
            } else {
                (1u32 << bits) - 1
            };
            let values: Vec<u32> = (0..100).map(|i| (i * 7) as u32 % (max + 1)).collect();
            let packed = pack_bits(&values, bits);
            assert_eq!(packed.len(), packed_len(values.len(), bits));
            assert_eq!(unpack_bits(&packed, bits, values.len()), values);
        }
    }

    #[test]
    fn roundtrip_wide_widths() {
        let values = [u32::MAX, 0, 123_456_789, 42];
        for bits in [27u32, 31, 32] {
            let vals: Vec<u32> = values
                .iter()
                .map(|v| if bits == 32 { *v } else { v % (1 << bits) })
                .collect();
            let packed = pack_bits(&vals, bits);
            assert_eq!(unpack_bits(&packed, bits, vals.len()), vals);
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn pack_rejects_overflow() {
        let _ = pack_bits(&[4], 2);
    }

    #[test]
    #[should_panic(expected = "bit width")]
    fn pack_rejects_zero_width() {
        let _ = pack_bits(&[0], 0);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn unpack_rejects_short_buffer() {
        let _ = unpack_bits(&[0u8], 8, 2);
    }

    #[test]
    fn fast_paths_match_generic_reference() {
        for bits in 1..=32u32 {
            let max = if bits == 32 {
                u32::MAX
            } else {
                (1 << bits) - 1
            };
            for len in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 31, 33, 100] {
                let values: Vec<u32> = (0..len)
                    .map(|i| (i as u32).wrapping_mul(0x9E37_79B9) & max)
                    .collect();
                let fast = pack_bits(&values, bits);
                let reference = pack_bits_generic(&values, bits);
                assert_eq!(fast, reference, "pack {bits}-bit len {len}");
                let mut a = Vec::new();
                unpack_bits_into(&fast, bits, len, &mut a);
                let mut b = Vec::new();
                unpack_bits_generic_into(&fast, bits, len, &mut b);
                assert_eq!(a, b, "unpack {bits}-bit len {len}");
                assert_eq!(a, values, "roundtrip {bits}-bit len {len}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn fast_path_rejects_overflow_with_same_message() {
        let _ = pack_bits(&[1, 2, 300, 4], 8);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn unpack_signs_rejects_short_buffer() {
        let _ = unpack_signs(&[0u8], 9);
    }

    #[test]
    fn sign_roundtrip() {
        let signs = vec![true, false, false, true, true, false, true, false, true];
        let packed = pack_signs(&signs);
        assert_eq!(packed.len(), 2); // 9 bits -> 2 bytes
        assert_eq!(unpack_signs(&packed, signs.len()), signs);
    }

    #[test]
    fn empty_inputs() {
        assert!(pack_bits(&[], 5).is_empty());
        assert!(unpack_bits(&[], 5, 0).is_empty());
        assert!(pack_signs(&[]).is_empty());
    }

    #[test]
    fn f32_bytes_roundtrip() {
        let vals = vec![1.5f32, -0.25, f32::MIN_POSITIVE, 1e30];
        assert_eq!(bytes_to_f32s(&f32s_to_bytes(&vals)), vals);
    }

    #[test]
    fn u32_bytes_roundtrip() {
        let vals = vec![0u32, 1, u32::MAX, 77];
        assert_eq!(bytes_to_u32s(&u32s_to_bytes(&vals)), vals);
    }

    #[test]
    fn packed_len_matches_formula() {
        assert_eq!(packed_len(8, 1), 1);
        assert_eq!(packed_len(9, 1), 2);
        assert_eq!(packed_len(3, 8), 3);
        assert_eq!(packed_len(5, 3), 2);
        assert_eq!(packed_len(0, 7), 0);
    }
}
