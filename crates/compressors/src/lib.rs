//! The 16 gradient-compression methods of the paper's Table I, implemented
//! against the GRACE API (`grace-core`).
//!
//! | Class | Methods |
//! |---|---|
//! | Quantization | [`EightBit`], [`OneBit`], [`SignSgd`], [`Signum`], [`Qsgd`], [`Natural`], [`TernGrad`], [`EfSignSgd`], [`Inceptionn`] |
//! | Sparsification | [`RandomK`], [`TopK`], [`ThresholdV`], [`Dgc`] |
//! | Hybrid | [`AdaptiveThreshold`], [`SketchMl`] |
//! | Low rank | [`PowerSgd`] |
//!
//! Every method produces byte-exact payloads (bit-packed where the method
//! packs) and declares its communication strategy; randomized methods own a
//! seeded RNG so runs are reproducible. [`registry::all_specs`] exposes the
//! full Table-I metadata plus per-worker builders.
//!
//! # Example
//!
//! ```
//! use grace_compressors::TopK;
//! use grace_core::Compressor;
//! use grace_tensor::Tensor;
//!
//! let mut topk = TopK::new(0.5); // keep the 2 largest of 4
//! let g = Tensor::from_vec(vec![0.1, -5.0, 0.2, 3.0]);
//! let (payloads, ctx) = topk.compress(&g, "w");
//! let restored = topk.decompress(&payloads, &ctx);
//! assert_eq!(restored.as_slice(), &[0.0, -5.0, 0.0, 3.0]);
//! ```

pub mod extensions;
pub mod hybrid;
pub mod lowrank;
pub mod quantization;
pub mod registry;
pub mod sparsification;

pub use extensions::{QsparseLocal, SketchedSgd, SpectralLowRank, ThreeLc, VarianceSparsifier};
pub use hybrid::{AdaptiveThreshold, SketchMl};
pub use lowrank::PowerSgd;
pub use quantization::{
    EfSignSgd, EightBit, Inceptionn, Natural, OneBit, Qsgd, SignSgd, Signum, TernGrad,
};
pub use sparsification::{Dgc, RandomK, ThresholdV, TopK};

#[cfg(test)]
pub(crate) mod testutil {
    use grace_core::{Compressor, Context, Payload};
    use grace_tensor::rng::seeded;
    use grace_tensor::{Shape, Tensor};
    use rand::Rng;

    /// A reproducible gradient-like tensor (roughly Gaussian magnitudes).
    pub fn gradient(len: usize, seed: u64) -> Tensor {
        let mut rng = seeded(seed);
        let data: Vec<f32> = (0..len)
            .map(|_| {
                let u: f32 = rng.gen_range(-1.0..1.0);
                u * u * u // heavier mass near zero, like real gradients
            })
            .collect();
        Tensor::new(data, Shape::vector(len))
    }

    /// Round-trips and checks the reconstruction keeps shape and is finite.
    pub fn roundtrip(c: &mut dyn Compressor, t: &Tensor) -> (Tensor, Vec<Payload>, Context) {
        let (payloads, ctx) = c.compress(t, "test/w");
        let out = c.decompress(&payloads, &ctx);
        assert_eq!(out.shape(), t.shape(), "shape not preserved");
        assert!(out.is_finite(), "reconstruction has non-finite values");
        (out, payloads, ctx)
    }

    /// Statistical unbiasedness check: mean of many compressions ≈ input.
    pub fn assert_unbiased(c: &mut dyn Compressor, t: &Tensor, reps: usize, tol: f32) {
        let mut acc = t.zeros_like();
        for _ in 0..reps {
            let (p, ctx) = c.compress(t, "test/w");
            acc.add_assign(&c.decompress(&p, &ctx));
        }
        acc.scale(1.0 / reps as f32);
        let err = acc.sub(t).norm2();
        let scale = t.norm2().max(1e-6);
        assert!(
            err / scale < tol,
            "bias too large: relative error {} (tol {tol})",
            err / scale
        );
    }
}
