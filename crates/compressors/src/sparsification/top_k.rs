//! Top-k sparsification (Aji & Heafield, EMNLP'17; Stich et al., NeurIPS'18).

use super::{ratio_to_k, sparse_decompress, sparse_payloads};
use grace_core::{Compressor, Context, Payload};
use grace_tensor::select::{gather, top_k_indices_with};
use grace_tensor::Tensor;

/// Top-k: transmits the `k = ⌈ratio·d⌉` elements of largest magnitude, as
/// in the paper's Figure 4 (values + indices). Deterministic and biased;
/// the paper runs it with error feedback (Stich et al.'s memory variant).
#[derive(Debug, Clone)]
pub struct TopK {
    ratio: f64,
    /// Pooled selection scratch: sized on the first compress, reused (no
    /// reallocation) on every later same-size call.
    scratch: Vec<u32>,
}

impl TopK {
    /// Creates Top-k with a sparsity ratio in `(0, 1]` (paper default 0.01).
    ///
    /// # Panics
    ///
    /// Panics if the ratio is outside `(0, 1]`.
    pub fn new(ratio: f64) -> Self {
        assert!(ratio > 0.0 && ratio <= 1.0, "ratio must be in (0,1]");
        TopK {
            ratio,
            scratch: Vec::new(),
        }
    }

    /// The configured sparsity ratio.
    pub fn ratio(&self) -> f64 {
        self.ratio
    }
}

impl Compressor for TopK {
    fn name(&self) -> String {
        format!("Topk({})", self.ratio)
    }

    fn compress(&mut self, tensor: &Tensor, _name: &str) -> (Vec<Payload>, Context) {
        let k = ratio_to_k(self.ratio, tensor.len());
        let indices = top_k_indices_with(tensor.as_slice(), k, &mut self.scratch);
        let values = gather(tensor, &indices);
        (
            sparse_payloads(values, indices),
            Context::shape_only(tensor.shape().clone()),
        )
    }

    fn decompress(&mut self, payloads: &[Payload], ctx: &Context) -> Tensor {
        sparse_decompress(payloads, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;

    #[test]
    fn keeps_exactly_the_largest_magnitudes() {
        let mut c = TopK::new(0.2);
        // Figure 4 of the paper (15 elements, 20% -> k=3).
        let g = Tensor::from_vec(vec![
            -0.1, 1.2, 3.0, 0.0, -3.5, 4.9, 0.88, 0.0, 0.0, -0.7, 1.0, 0.0, 9.0, -0.3, 0.2,
        ]);
        let (out, payloads, _) = roundtrip(&mut c, &g);
        assert_eq!(payloads[1].as_u32(), &[4, 5, 12]);
        assert_eq!(payloads[0].as_f32(), &[-3.5, 4.9, 9.0]);
        assert_eq!(out.norm0(), 3);
        assert_eq!(out[12], 9.0);
    }

    #[test]
    fn volume_is_8_bytes_per_kept_element() {
        let mut c = TopK::new(0.01);
        let g = gradient(10_000, 1);
        let (_, payloads, ctx) = roundtrip(&mut c, &g);
        let bytes: usize = payloads.iter().map(|p| p.encoded_bytes()).sum();
        assert_eq!(bytes, 100 * 8);
        assert_eq!(ctx.meta_bytes(), 0);
    }

    #[test]
    fn error_feedback_recovers_dropped_mass() {
        use grace_core::{Memory, ResidualMemory};
        let mut c = TopK::new(0.25);
        let mut mem = ResidualMemory::new();
        let g = Tensor::from_vec(vec![1.0, 0.8, 0.6, 0.4]);
        // Iter 1: keeps 1.0, residual holds the rest.
        let comp = mem.compensate("w", &g);
        let (p, ctx) = c.compress(&comp, "w");
        let dec = c.decompress(&p, &ctx);
        mem.update("w", &comp, &dec);
        assert_eq!(dec.norm0(), 1);
        // Iter 2: 0.8 has accumulated to 1.6 and now wins.
        let comp2 = mem.compensate("w", &g);
        let (p2, ctx2) = c.compress(&comp2, "w");
        let dec2 = c.decompress(&p2, &ctx2);
        assert_eq!(dec2[1], 1.6, "second element should surface via EF");
    }

    #[test]
    fn full_ratio_is_lossless() {
        let mut c = TopK::new(1.0);
        let g = gradient(64, 2);
        let (out, _, _) = roundtrip(&mut c, &g);
        assert_eq!(out.as_slice(), g.as_slice());
    }

    #[test]
    #[should_panic(expected = "ratio")]
    fn rejects_zero_ratio() {
        let _ = TopK::new(0.0);
    }
}
