//! Random-k sparsification (Stich et al., NeurIPS'18).

use super::{ratio_to_k, sparse_decompress, sparse_payloads};
use grace_core::{Compressor, Context, Payload};
use grace_tensor::rng::substream;
use grace_tensor::select::{gather, random_k_indices};
use grace_tensor::Tensor;
use rand::rngs::StdRng;

/// Random-k: transmits `k = ⌈ratio·d⌉` uniformly random elements. Biased by
/// design; multiplying by `d/k` makes it unbiased (off by default, matching
/// the paper's biased-with-EF configuration).
///
/// The index sampling is the dominant compute cost on large tensors — the
/// `tf.random.shuffle`-on-CPU pathology of the paper's Fig. 8 — and is
/// charged to the simulated clock like every other cost.
#[derive(Debug)]
pub struct RandomK {
    ratio: f64,
    unbiased: bool,
    rng: StdRng,
}

impl RandomK {
    /// Creates biased Random-k with a sparsity ratio in `(0, 1]` (paper
    /// default 0.01) and an RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if the ratio is outside `(0, 1]`.
    pub fn new(ratio: f64, seed: u64) -> Self {
        assert!(ratio > 0.0 && ratio <= 1.0, "ratio must be in (0,1]");
        RandomK {
            ratio,
            unbiased: false,
            rng: substream(seed, 0xa2d0),
        }
    }

    /// Switches to the unbiased variant (values scaled by `d/k`).
    pub fn unbiased(mut self) -> Self {
        self.unbiased = true;
        self
    }

    /// The configured sparsity ratio.
    pub fn ratio(&self) -> f64 {
        self.ratio
    }
}

impl Compressor for RandomK {
    fn name(&self) -> String {
        format!("Randk({})", self.ratio)
    }

    fn compress(&mut self, tensor: &Tensor, _name: &str) -> (Vec<Payload>, Context) {
        let d = tensor.len();
        let k = ratio_to_k(self.ratio, d);
        let indices = random_k_indices(&mut self.rng, d, k);
        let mut values = gather(tensor, &indices);
        if self.unbiased {
            let scale = d as f32 / k as f32;
            values.iter_mut().for_each(|v| *v *= scale);
        }
        (
            sparse_payloads(values, indices),
            Context::shape_only(tensor.shape().clone()),
        )
    }

    fn decompress(&mut self, payloads: &[Payload], ctx: &Context) -> Tensor {
        sparse_decompress(payloads, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;

    #[test]
    fn keeps_k_values_from_the_input() {
        let mut c = RandomK::new(0.1, 7);
        let g = gradient(500, 1);
        let (out, payloads, _) = roundtrip(&mut c, &g);
        assert_eq!(payloads[0].as_f32().len(), 50);
        assert!(out.norm0() <= 50);
        // Every surviving value matches the original at its index.
        for (&v, &i) in payloads[0].as_f32().iter().zip(payloads[1].as_u32()) {
            assert_eq!(v, g[i as usize]);
        }
    }

    #[test]
    fn selection_changes_between_calls() {
        let mut c = RandomK::new(0.05, 8);
        let g = gradient(400, 2);
        let (p1, _) = c.compress(&g, "w");
        let (p2, _) = c.compress(&g, "w");
        assert_ne!(
            p1[1].as_u32(),
            p2[1].as_u32(),
            "indices should re-randomize"
        );
    }

    #[test]
    fn unbiased_variant_is_unbiased() {
        let mut c = RandomK::new(0.25, 9).unbiased();
        let g = gradient(64, 3);
        assert_unbiased(&mut c, &g, 4000, 0.1);
    }

    #[test]
    fn biased_variant_underestimates() {
        let mut c = RandomK::new(0.25, 10);
        let g = Tensor::from_vec(vec![1.0; 64]);
        let mut acc = g.zeros_like();
        for _ in 0..500 {
            let (p, ctx) = c.compress(&g, "w");
            acc.add_assign(&c.decompress(&p, &ctx));
        }
        acc.scale(1.0 / 500.0);
        let mean = acc.mean();
        assert!(
            (mean - 0.25).abs() < 0.05,
            "biased mean should be ≈ ratio, got {mean}"
        );
    }

    #[test]
    fn seeded_runs_reproduce() {
        let g = gradient(128, 4);
        let mut a = RandomK::new(0.1, 42);
        let mut b = RandomK::new(0.1, 42);
        let (pa, _) = a.compress(&g, "w");
        let (pb, _) = b.compress(&g, "w");
        assert_eq!(pa, pb);
    }
}
