//! Threshold-v sparsification (Dutta et al., AAAI'20).

use super::{sparse_decompress, sparse_payloads};
use grace_core::{Compressor, Context, Payload};
use grace_tensor::select::{gather, threshold_indices};
use grace_tensor::Tensor;

/// Threshold-v: transmits every element with `|g[i]| ≥ v`. The output size is
/// adaptive (input-dependent) and, as the paper notes, a good `v` is
/// model-specific and hard to pick — too high sends nothing, too low sends
/// everything.
#[derive(Debug, Clone)]
pub struct ThresholdV {
    v: f32,
}

impl ThresholdV {
    /// Creates the compressor with threshold `v` (paper microbenchmarks use
    /// 0.01).
    ///
    /// # Panics
    ///
    /// Panics if `v` is negative or non-finite.
    pub fn new(v: f32) -> Self {
        assert!(v.is_finite() && v >= 0.0, "threshold must be non-negative");
        ThresholdV { v }
    }

    /// The configured threshold.
    pub fn threshold(&self) -> f32 {
        self.v
    }
}

impl Compressor for ThresholdV {
    fn name(&self) -> String {
        format!("Thresh({})", self.v)
    }

    fn compress(&mut self, tensor: &Tensor, _name: &str) -> (Vec<Payload>, Context) {
        let indices = threshold_indices(tensor.as_slice(), self.v);
        let values = gather(tensor, &indices);
        (
            sparse_payloads(values, indices),
            Context::shape_only(tensor.shape().clone()),
        )
    }

    fn decompress(&mut self, payloads: &[Payload], ctx: &Context) -> Tensor {
        sparse_decompress(payloads, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;

    #[test]
    fn keeps_only_above_threshold() {
        let mut c = ThresholdV::new(1.0);
        let g = Tensor::from_vec(vec![0.5, -2.0, 1.0, -0.1, 3.0]);
        let (out, payloads, _) = roundtrip(&mut c, &g);
        assert_eq!(payloads[1].as_u32(), &[1, 2, 4]);
        assert_eq!(out.as_slice(), &[0.0, -2.0, 1.0, 0.0, 3.0]);
    }

    #[test]
    fn output_size_is_adaptive() {
        let mut c = ThresholdV::new(0.1);
        let small = Tensor::from_vec(vec![0.01; 100]);
        let (p_small, _) = c.compress(&small, "w");
        assert_eq!(p_small[0].as_f32().len(), 0);
        let large = Tensor::from_vec(vec![1.0; 100]);
        let (p_large, _) = c.compress(&large, "w");
        assert_eq!(p_large[0].as_f32().len(), 100);
    }

    #[test]
    fn zero_threshold_is_lossless() {
        let mut c = ThresholdV::new(0.0);
        let g = gradient(64, 1);
        let (out, _, _) = roundtrip(&mut c, &g);
        assert_eq!(out.as_slice(), g.as_slice());
    }

    #[test]
    fn error_feedback_eventually_sends_small_values() {
        use grace_core::{Memory, ResidualMemory};
        let mut c = ThresholdV::new(1.0);
        let mut mem = ResidualMemory::new();
        let g = Tensor::from_vec(vec![0.3]);
        let mut sent_at = None;
        for it in 0..6 {
            let comp = mem.compensate("w", &g);
            let (p, ctx) = c.compress(&comp, "w");
            let dec = c.decompress(&p, &ctx);
            mem.update("w", &comp, &dec);
            if dec[0] != 0.0 {
                sent_at = Some(it);
                break;
            }
        }
        // 0.3 accumulates past 1.0 on the fourth iteration.
        assert_eq!(sent_at, Some(3));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_threshold() {
        let _ = ThresholdV::new(-1.0);
    }
}
