//! Deep Gradient Compression (Lin et al., ICLR'18).

use super::{ratio_to_k, sparse_decompress, sparse_payloads};
use grace_core::{Compressor, Context, Payload};
use grace_tensor::rng::substream;
use grace_tensor::select::sampled_abs_threshold;
use grace_tensor::Tensor;
use rand::rngs::StdRng;
use std::collections::HashMap;

/// DGC: momentum correction + gradient accumulation with top-ratio selection.
///
/// Per tensor, per iteration:
///
/// ```text
/// u ← m·u + g            (momentum correction)
/// v ← v + u              (accumulation — built-in error feedback)
/// mask = |v| ≥ τ         (τ from sampled top-ratio estimation)
/// send v[mask];  v ← v·(1−mask);  u ← u·(1−mask)   (momentum factor masking)
/// ```
///
/// The threshold is estimated from a sample (one pass — the paper's Fig. 8
/// profiling found the multi-round adjustment loop to be ~2× slower).
/// Because the memory is built in, the framework pairs DGC with
/// [`grace_core::NoMemory`].
#[derive(Debug)]
pub struct Dgc {
    ratio: f64,
    momentum: f32,
    sample_size: usize,
    u: HashMap<String, Tensor>,
    v: HashMap<String, Tensor>,
    rng: StdRng,
}

impl Dgc {
    /// Creates DGC with a sparsity ratio in `(0, 1]` (paper default 0.01),
    /// momentum 0.9 and a sampled-threshold estimator seeded by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the ratio is outside `(0, 1]`.
    pub fn new(ratio: f64, seed: u64) -> Self {
        assert!(ratio > 0.0 && ratio <= 1.0, "ratio must be in (0,1]");
        Dgc {
            ratio,
            momentum: 0.9,
            sample_size: 1000,
            u: HashMap::new(),
            v: HashMap::new(),
            rng: substream(seed, 0xd6c),
        }
    }

    /// The configured sparsity ratio.
    pub fn ratio(&self) -> f64 {
        self.ratio
    }
}

impl Compressor for Dgc {
    fn name(&self) -> String {
        format!("DGC({})", self.ratio)
    }

    fn compress(&mut self, tensor: &Tensor, name: &str) -> (Vec<Payload>, Context) {
        let u = self
            .u
            .entry(name.to_string())
            .or_insert_with(|| tensor.zeros_like());
        u.scale(self.momentum);
        u.add_assign(tensor);
        self.v
            .entry(name.to_string())
            .or_insert_with(|| tensor.zeros_like());
        // Borrow juggling: u was just updated; add it into v.
        let u_snapshot = self.u.get(name).expect("just inserted").clone();
        let v = self.v.get_mut(name).expect("just inserted");
        v.add_assign(&u_snapshot);

        let tau = sampled_abs_threshold(&mut self.rng, v.as_slice(), self.ratio, self.sample_size);
        let mut values = Vec::new();
        let mut indices = Vec::new();
        // Cap the selection at 2·k so a bad sampled τ cannot blow up volume.
        let cap = 2 * ratio_to_k(self.ratio, v.len());
        for (i, val) in v.as_slice().iter().enumerate() {
            if val.abs() >= tau && values.len() < cap {
                values.push(*val);
                indices.push(i as u32);
            }
        }
        // Momentum factor masking: clear sent coordinates in both u and v.
        let u = self.u.get_mut(name).expect("present");
        let v = self.v.get_mut(name).expect("present");
        for &i in &indices {
            v[i as usize] = 0.0;
            u[i as usize] = 0.0;
        }
        (
            sparse_payloads(values, indices),
            Context::shape_only(tensor.shape().clone()),
        )
    }

    fn decompress(&mut self, payloads: &[Payload], ctx: &Context) -> Tensor {
        sparse_decompress(payloads, ctx)
    }

    fn supports_error_feedback(&self) -> bool {
        false // accumulation is built in
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;

    #[test]
    fn first_iteration_sends_top_elements() {
        let mut c = Dgc::new(0.25, 1);
        let g = Tensor::from_vec(vec![0.1, -5.0, 0.2, 3.0]);
        let (out, _, _) = roundtrip(&mut c, &g);
        // Top-25% of |v| = |g| on the first call: the -5.0 element.
        assert!(out[1] != 0.0, "largest element must be sent");
        assert!(out.norm0() <= 2, "cap at 2k elements");
    }

    #[test]
    fn accumulation_preserves_unsent_mass() {
        let mut c = Dgc::new(0.25, 2);
        let g = Tensor::from_vec(vec![1.0, 0.5, 0.1, 0.05]);
        let mut total_sent = g.zeros_like();
        for _ in 0..12 {
            let (p, ctx) = c.compress(&g, "w");
            total_sent.add_assign(&c.decompress(&p, &ctx));
        }
        // After 12 iterations each coordinate must have been transmitted
        // with cumulative mass close to 12·g (momentum inflates transient
        // values but masking clears state after each send).
        for i in 0..4 {
            assert!(
                total_sent[i] > 0.0,
                "coordinate {i} never sent despite accumulation"
            );
        }
    }

    #[test]
    fn momentum_state_is_per_tensor() {
        let mut c = Dgc::new(1.0, 3);
        let ga = Tensor::from_vec(vec![1.0]);
        let gb = Tensor::from_vec(vec![-1.0]);
        let (pa, ca) = c.compress(&ga, "a");
        let (pb, cb) = c.compress(&gb, "b");
        assert_eq!(c.decompress(&pa, &ca)[0], 1.0);
        assert_eq!(c.decompress(&pb, &cb)[0], -1.0);
    }

    #[test]
    fn volume_respects_cap() {
        let mut c = Dgc::new(0.01, 4);
        let g = gradient(10_000, 5);
        for _ in 0..5 {
            let (p, _) = c.compress(&g, "w");
            assert!(p[0].as_f32().len() <= 200, "cap 2k violated");
        }
    }

    #[test]
    fn built_in_memory_flag() {
        assert!(!Dgc::new(0.01, 0).supports_error_feedback());
    }
}
