//! Sparsification methods (paper §III-B): transmit a subset of elements as
//! (values, indices) pairs.

mod dgc;
mod random_k;
mod threshold_v;
mod top_k;

pub use dgc::Dgc;
pub use random_k::RandomK;
pub use threshold_v::ThresholdV;
pub use top_k::TopK;

use grace_core::{Context, Payload};
use grace_tensor::select::{desparsify, SparseSelection};
use grace_tensor::Tensor;

/// Builds the standard sparse wire format: values + indices payloads.
pub(crate) fn sparse_payloads(values: Vec<f32>, indices: Vec<u32>) -> Vec<Payload> {
    vec![Payload::F32(values), Payload::U32(indices)]
}

/// Restores a dense tensor from the standard sparse wire format.
pub(crate) fn sparse_decompress(payloads: &[Payload], ctx: &Context) -> Tensor {
    let selection = SparseSelection {
        values: payloads[0].as_f32().to_vec(),
        indices: payloads[1].as_u32().to_vec(),
        shape: ctx.shape.clone(),
    };
    desparsify(&selection)
}

/// Resolves a sparsity ratio into an element count `k ≥ 1`.
pub(crate) fn ratio_to_k(ratio: f64, d: usize) -> usize {
    ((d as f64 * ratio).ceil() as usize).clamp(1, d.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use grace_tensor::Shape;

    #[test]
    fn ratio_to_k_clamps() {
        assert_eq!(ratio_to_k(0.01, 1000), 10);
        assert_eq!(ratio_to_k(0.001, 100), 1); // at least one element
        assert_eq!(ratio_to_k(2.0, 100), 100); // capped at d
        assert_eq!(ratio_to_k(0.5, 7), 4); // ceil
    }

    #[test]
    fn sparse_wire_roundtrip() {
        let payloads = sparse_payloads(vec![5.0, -1.0], vec![1, 3]);
        let ctx = Context::shape_only(Shape::vector(4));
        let out = sparse_decompress(&payloads, &ctx);
        assert_eq!(out.as_slice(), &[0.0, 5.0, 0.0, -1.0]);
    }
}
