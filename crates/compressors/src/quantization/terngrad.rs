//! TernGrad (Wen et al., NeurIPS'17).

use grace_core::{Compressor, Context, Payload};
use grace_tensor::rng::substream;
use grace_tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;

/// TernGrad: ternary gradients `{−1, 0, +1}` scaled by `‖g‖∞`. Each element
/// activates with probability `|g[i]|/‖g‖∞` (unbiased), keeping its sign:
/// `g̃ = ‖g‖∞ · sign(g) ⊙ b`, `P(b[i]=1) = |g[i]|/‖g‖∞`.
///
/// Elements are packed at 2 bits each (codes 0 = zero, 1 = +1, 2 = −1).
#[derive(Debug)]
pub struct TernGrad {
    rng: StdRng,
}

impl TernGrad {
    /// Creates the compressor with an RNG seed for the Bernoulli mask.
    pub fn new(seed: u64) -> Self {
        TernGrad {
            rng: substream(seed, 0x7e6d),
        }
    }
}

impl Compressor for TernGrad {
    fn name(&self) -> String {
        "TernGrad".to_string()
    }

    fn compress(&mut self, tensor: &Tensor, _name: &str) -> (Vec<Payload>, Context) {
        let scale = tensor.norm_inf();
        let codes: Vec<u32> = tensor
            .as_slice()
            .iter()
            .map(|&v| {
                if scale == 0.0 {
                    return 0u32;
                }
                let p = v.abs() / scale;
                if self.rng.gen::<f32>() < p {
                    if v < 0.0 {
                        2
                    } else {
                        1
                    }
                } else {
                    0
                }
            })
            .collect();
        (
            vec![Payload::packed(&codes, 2)],
            Context::with_meta(tensor.shape().clone(), vec![scale]),
        )
    }

    fn decompress(&mut self, payloads: &[Payload], ctx: &Context) -> Tensor {
        let scale = ctx.meta[0];
        let data: Vec<f32> = payloads[0]
            .unpack()
            .into_iter()
            .map(|code| match code {
                1 => scale,
                2 => -scale,
                _ => 0.0,
            })
            .collect();
        Tensor::new(data, ctx.shape.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;

    #[test]
    fn outputs_are_ternary() {
        let mut c = TernGrad::new(1);
        let g = gradient(400, 1);
        let scale = g.norm_inf();
        let (out, _, _) = roundtrip(&mut c, &g);
        for i in 0..out.len() {
            assert!(
                out[i] == 0.0 || (out[i].abs() - scale).abs() < 1e-6,
                "non-ternary value {}",
                out[i]
            );
        }
    }

    #[test]
    fn terngrad_is_unbiased() {
        let mut c = TernGrad::new(2);
        let g = gradient(64, 3);
        assert_unbiased(&mut c, &g, 4000, 0.08);
    }

    #[test]
    fn largest_element_always_survives() {
        let mut c = TernGrad::new(3);
        let g = Tensor::from_vec(vec![0.1, -0.9, 0.3]);
        for _ in 0..30 {
            let (p, ctx) = c.compress(&g, "w");
            let out = c.decompress(&p, &ctx);
            assert_eq!(out[1], -0.9, "max-magnitude element has p=1");
        }
    }

    #[test]
    fn payload_is_two_bits_per_element() {
        let mut c = TernGrad::new(4);
        let g = gradient(800, 5);
        let (_, payloads, ctx) = roundtrip(&mut c, &g);
        assert_eq!(payloads[0].encoded_bytes(), 200); // 2 bits × 800
        assert_eq!(ctx.meta_bytes(), 4);
    }

    #[test]
    fn zero_tensor_roundtrips() {
        let mut c = TernGrad::new(5);
        let g = Tensor::from_vec(vec![0.0; 8]);
        let (out, _, _) = roundtrip(&mut c, &g);
        assert_eq!(out.norm_inf(), 0.0);
    }
}
