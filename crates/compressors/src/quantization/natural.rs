//! Natural compression (Horváth et al., 2019).

use grace_core::{Compressor, Context, Payload};
use grace_tensor::rng::substream;
use grace_tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;

/// Exponent bias for the 8-bit exponent code (same convention as IEEE-754
/// single precision).
const BIAS: i32 = 127;

/// Natural compression: randomized rounding of each magnitude to one of the
/// two nearest integer powers of two, keeping the rounding unbiased:
/// `|v| ∈ [2^e, 2^(e+1))` rounds up with probability `(|v| − 2^e)/2^e`.
///
/// Each element is encoded as 1 sign bit + 8 exponent bits (9 bits packed);
/// zero uses the all-zero exponent code.
#[derive(Debug)]
pub struct Natural {
    rng: StdRng,
}

impl Natural {
    /// Creates the compressor with an RNG seed for the randomized rounding.
    pub fn new(seed: u64) -> Self {
        Natural {
            rng: substream(seed, 0xa70ca1),
        }
    }
}

impl Compressor for Natural {
    fn name(&self) -> String {
        "Natural".to_string()
    }

    fn compress(&mut self, tensor: &Tensor, _name: &str) -> (Vec<Payload>, Context) {
        let codes: Vec<u32> = tensor
            .as_slice()
            .iter()
            .map(|&v| {
                if v == 0.0 || !v.is_finite() {
                    return 0u32; // code 0 = exact zero
                }
                let sign = u32::from(v < 0.0);
                let mag = v.abs();
                let e = mag.log2().floor();
                let lo = 2.0f32.powf(e);
                let p = (mag - lo) / lo;
                let exp = e as i32 + i32::from(self.rng.gen::<f32>() < p);
                // Clamp to the representable exponent range [−126, 127].
                let stored = (exp + BIAS).clamp(1, 255) as u32;
                (sign << 8) | stored
            })
            .collect();
        (
            vec![Payload::packed(&codes, 9)],
            Context::shape_only(tensor.shape().clone()),
        )
    }

    fn decompress(&mut self, payloads: &[Payload], ctx: &Context) -> Tensor {
        let data: Vec<f32> = payloads[0]
            .unpack()
            .into_iter()
            .map(|code| {
                let stored = code & 0xFF;
                if stored == 0 {
                    return 0.0;
                }
                let sign = if code >> 8 == 1 { -1.0f32 } else { 1.0 };
                sign * 2.0f32.powi(stored as i32 - BIAS)
            })
            .collect();
        Tensor::new(data, ctx.shape.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;

    #[test]
    fn outputs_are_powers_of_two() {
        let mut c = Natural::new(1);
        let g = gradient(300, 1);
        let (out, _, _) = roundtrip(&mut c, &g);
        for i in 0..out.len() {
            if out[i] != 0.0 {
                let l = out[i].abs().log2();
                assert!(
                    (l - l.round()).abs() < 1e-6,
                    "{} is not a power of 2",
                    out[i]
                );
            }
        }
    }

    #[test]
    fn rounding_brackets_the_input() {
        let mut c = Natural::new(2);
        let g = Tensor::from_vec(vec![0.3, -1.7, 5.0, 0.9]);
        for _ in 0..50 {
            let (p, ctx) = c.compress(&g, "w");
            let out = c.decompress(&p, &ctx);
            for i in 0..g.len() {
                let mag = g[i].abs();
                let lo = 2.0f32.powf(mag.log2().floor());
                let hi = lo * 2.0;
                assert!(
                    (out[i].abs() - lo).abs() < 1e-6 || (out[i].abs() - hi).abs() < 1e-6,
                    "{} not in {{{lo},{hi}}}",
                    out[i].abs()
                );
                assert_eq!(out[i].signum(), g[i].signum());
            }
        }
    }

    #[test]
    fn natural_is_unbiased() {
        let mut c = Natural::new(3);
        let g = gradient(64, 5);
        assert_unbiased(&mut c, &g, 4000, 0.05);
    }

    #[test]
    fn exact_powers_are_preserved() {
        let mut c = Natural::new(4);
        let g = Tensor::from_vec(vec![1.0, -0.5, 4.0, 0.0]);
        let (out, _, _) = roundtrip(&mut c, &g);
        assert_eq!(out.as_slice(), &[1.0, -0.5, 4.0, 0.0]);
    }

    #[test]
    fn payload_is_nine_bits_per_element() {
        let mut c = Natural::new(5);
        let g = gradient(800, 6);
        let (_, payloads, ctx) = roundtrip(&mut c, &g);
        assert_eq!(payloads[0].encoded_bytes(), 900); // 9 bits × 800
        assert_eq!(ctx.meta_bytes(), 0);
    }

    #[test]
    fn tiny_values_clamp_instead_of_vanishing() {
        let mut c = Natural::new(6);
        let g = Tensor::from_vec(vec![1e-45f32.max(f32::MIN_POSITIVE)]);
        let (out, _, _) = roundtrip(&mut c, &g);
        assert!(out[0] > 0.0, "subnormal collapsed to zero sign info lost");
    }
}
