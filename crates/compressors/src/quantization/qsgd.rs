//! QSGD (Alistarh et al., NeurIPS'17).

use grace_core::{Compressor, Context, Payload};
use grace_tensor::rng::substream;
use grace_tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;

/// QSGD: randomized rounding onto `s + 1` code-words `{0, 1/s, …, 1}` of the
/// normalized magnitude `|g[i]|/‖g‖₂` (paper Fig. 3):
///
/// ```text
/// g̃[i] = ‖g‖₂ · sign(g[i]) · (l + Bernoulli(p)) / s,
/// where l = ⌊|g[i]|·s/‖g‖₂⌋ and p = |g[i]|·s/‖g‖₂ − l.
/// ```
///
/// The scheme is unbiased. Each element costs 1 sign bit plus
/// `⌈log₂(s+1)⌉` level bits, all bit-packed.
#[derive(Debug)]
pub struct Qsgd {
    s: u32,
    level_bits: u32,
    rng: StdRng,
}

impl Qsgd {
    /// Creates QSGD with `s` quantization levels (the paper's default
    /// configuration is `QSGD(64)`) and an RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if `s == 0`.
    pub fn new(s: u32, seed: u64) -> Self {
        assert!(s >= 1, "need at least one level");
        let level_bits = 32 - s.leading_zeros(); // ⌈log₂(s+1)⌉ for s ≥ 1
        Qsgd {
            s,
            level_bits,
            rng: substream(seed, 0x9509d),
        }
    }

    /// The number of levels `s`.
    pub fn levels(&self) -> u32 {
        self.s
    }
}

impl Compressor for Qsgd {
    fn name(&self) -> String {
        format!("QSGD({})", self.s)
    }

    fn compress(&mut self, tensor: &Tensor, _name: &str) -> (Vec<Payload>, Context) {
        let norm = tensor.norm2();
        let s = self.s as f32;
        let mut signs = Vec::with_capacity(tensor.len());
        let mut levels = Vec::with_capacity(tensor.len());
        for &v in tensor.as_slice() {
            signs.push(u32::from(v < 0.0));
            if norm == 0.0 {
                levels.push(0u32);
                continue;
            }
            let scaled = v.abs() / norm * s;
            let l = scaled.floor();
            let p = scaled - l;
            let level = l as u32 + u32::from(self.rng.gen::<f32>() < p);
            levels.push(level.min(self.s));
        }
        (
            vec![
                Payload::packed(&signs, 1),
                Payload::packed(&levels, self.level_bits),
            ],
            Context::with_meta(tensor.shape().clone(), vec![norm]),
        )
    }

    fn decompress(&mut self, payloads: &[Payload], ctx: &Context) -> Tensor {
        let norm = ctx.meta[0];
        let signs = payloads[0].unpack();
        let levels = payloads[1].unpack();
        let s = self.s as f32;
        let data: Vec<f32> = signs
            .into_iter()
            .zip(levels)
            .map(|(sign, level)| {
                let v = norm * level as f32 / s;
                if sign == 1 {
                    -v
                } else {
                    v
                }
            })
            .collect();
        Tensor::new(data, ctx.shape.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;

    #[test]
    fn level_bits_formula() {
        assert_eq!(Qsgd::new(1, 0).level_bits, 1);
        assert_eq!(Qsgd::new(4, 0).level_bits, 3); // levels 0..=4 need 3 bits
        assert_eq!(Qsgd::new(64, 0).level_bits, 7);
        assert_eq!(Qsgd::new(255, 0).level_bits, 8);
    }

    #[test]
    fn quantized_values_lie_on_the_grid() {
        let mut c = Qsgd::new(4, 7);
        let g = gradient(200, 1);
        let norm = g.norm2();
        let (out, _, _) = roundtrip(&mut c, &g);
        for i in 0..out.len() {
            let scaled = out[i].abs() / norm * 4.0;
            assert!(
                (scaled - scaled.round()).abs() < 1e-4,
                "value {} not on grid",
                out[i]
            );
        }
    }

    #[test]
    fn qsgd_is_unbiased() {
        let mut c = Qsgd::new(4, 3);
        let g = gradient(64, 2);
        assert_unbiased(&mut c, &g, 3000, 0.05);
    }

    #[test]
    fn payload_bytes_match_bit_budget() {
        let mut c = Qsgd::new(64, 5);
        let g = gradient(800, 3);
        let (_, payloads, ctx) = roundtrip(&mut c, &g);
        assert_eq!(payloads[0].encoded_bytes(), 100); // 1 bit × 800
        assert_eq!(payloads[1].encoded_bytes(), 700); // 7 bits × 800
        assert_eq!(ctx.meta_bytes(), 4);
    }

    #[test]
    fn zero_tensor_is_fixed_point() {
        let mut c = Qsgd::new(8, 1);
        let g = Tensor::from_vec(vec![0.0; 10]);
        let (out, _, _) = roundtrip(&mut c, &g);
        assert_eq!(out.norm_inf(), 0.0);
    }

    #[test]
    fn paper_example_rounding_probabilities() {
        // Figure 3's mechanism: with s = 4 the first element's normalized
        // magnitude lies in [0, 1/4) and randomized rounding picks 1/4 with
        // probability p = |g₀|·s/‖g‖₂ and 0 otherwise.
        let mut zero_count = 0;
        let mut quarter_count = 0;
        let mut c = Qsgd::new(4, 11);
        let g = Tensor::from_vec(vec![-3.39, 1.78, 10.87, -2.22, 10.9, 1.12, -32.1, 12.5]);
        let norm = g.norm2();
        let expect_p = (3.39 / norm * 4.0) as f64;
        assert!(expect_p < 1.0, "example must sit in the lowest bin");
        for _ in 0..2000 {
            let (p, ctx) = c.compress(&g, "w");
            let out = c.decompress(&p, &ctx);
            let lvl = (out[0].abs() / norm * 4.0).round() as u32;
            if lvl == 0 {
                zero_count += 1;
            } else if lvl == 1 {
                quarter_count += 1;
            }
        }
        let p_quarter = quarter_count as f64 / 2000.0;
        assert!(
            (p_quarter - expect_p).abs() < 0.05,
            "p={p_quarter}, expected {expect_p}"
        );
        assert_eq!(zero_count + quarter_count, 2000);
    }

    #[test]
    fn seeded_runs_reproduce() {
        let g = gradient(128, 9);
        let mut a = Qsgd::new(16, 42);
        let mut b = Qsgd::new(16, 42);
        let (pa, _) = a.compress(&g, "w");
        let (pb, _) = b.compress(&g, "w");
        assert_eq!(pa, pb);
    }
}
