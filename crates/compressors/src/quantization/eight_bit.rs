//! 8-bit quantization (Dettmers, ICLR'16).

use grace_core::{
    CommStrategy, Compressor, Context, FoldScratch, HomomorphicAggregate, Payload, PayloadList,
};
use grace_tensor::{simd, Tensor};

/// Number of magnitude code points (7 bits; the 8th bit is the sign).
const MAGNITUDES: usize = 128;

/// 8-bit quantization: each `float32` maps to 1 sign bit + a 7-bit index
/// into a logarithmic code-book of normalized magnitudes (the paper describes
/// 1 sign, 3 exponent and 4 mantissa bits — exactly a 7-bit log-spaced
/// magnitude grid).
///
/// The gradient is normalized by `‖g‖∞` (shipped in the context); decoding
/// looks the magnitude up and restores sign and scale. Finding the nearest
/// code-word is a binary search per element — the `find_bins` cost the
/// paper's Fig. 8 calls out.
#[derive(Debug, Clone)]
pub struct EightBit {
    table: Vec<f32>,
    /// Pooled code buffer: sized by the first compress/decompress, reused
    /// (never reallocated) on every later same-size call.
    codes: Vec<u32>,
}

impl EightBit {
    /// Creates the quantizer with the standard dynamic code-book.
    pub fn new() -> Self {
        // Code-book: 0, then log-spaced values 2^-7 * (1 + m/16) * 2^e for
        // e in 0..7, m in 0..16 — 1 + 7*16 = 113 values, padded to 128 by
        // subdividing the top octave. Monotone increasing, max = 1.0.
        let mut table = vec![0.0f32];
        for e in 0..7 {
            for m in 0..16 {
                let v = 2.0f32.powi(e - 7) * (1.0 + m as f32 / 16.0);
                table.push(v.min(1.0));
            }
        }
        // Fill the remainder with a fine grid in the top octave (dynamic
        // exponent range, per Dettmers' dynamic scheme).
        while table.len() < MAGNITUDES {
            let k = table.len() - 113;
            table.push(0.5 + (k as f32 + 1.0) / 32.0);
        }
        table.truncate(MAGNITUDES);
        table.sort_by(|a, b| a.partial_cmp(b).expect("finite table"));
        table.dedup();
        while table.len() < MAGNITUDES {
            let last = *table.last().expect("non-empty");
            table.push((last + 1.0) / 2.0);
        }
        EightBit {
            table,
            codes: Vec::new(),
        }
    }

    /// Reference encode for one normalized magnitude — the semantics the
    /// vectorized [`simd::quantize_sign_mag`] kernel must reproduce (kept
    /// as the oracle the tests compare against).
    #[cfg(test)]
    fn nearest_code(&self, x: f32) -> u32 {
        // Binary search for the nearest code-word (the find_bins operation).
        let idx = self.table.partition_point(|v| *v < x);
        if idx == 0 {
            0
        } else if idx >= self.table.len() {
            (self.table.len() - 1) as u32
        } else {
            let lo = self.table[idx - 1];
            let hi = self.table[idx];
            if (x - lo) <= (hi - x) {
                (idx - 1) as u32
            } else {
                idx as u32
            }
        }
    }

    /// Reference decode expression — the semantics `decompress` and the
    /// homomorphic fold share via [`simd::dequant_sign_mag`], kept as the
    /// oracle the tests compare against. Note the `-1.0 * 0.0 * scale` case
    /// decodes to `-0.0` — the fold must *assign* worker 0's values, never
    /// add them onto a zeroed accumulator.
    #[cfg(test)]
    fn decode_code(&self, code: u32, scale: f32) -> f32 {
        let sign = if code >> 7 == 1 { -1.0 } else { 1.0 };
        sign * self.table[(code & 0x7F) as usize] * scale
    }
}

impl Default for EightBit {
    fn default() -> Self {
        Self::new()
    }
}

impl Compressor for EightBit {
    fn name(&self) -> String {
        "8-bit".to_string()
    }

    fn strategy(&self) -> CommStrategy {
        CommStrategy::Allgather
    }

    fn compress(&mut self, tensor: &Tensor, _name: &str) -> (Vec<Payload>, Context) {
        let scale = tensor.norm_inf();
        let inv = if scale > 0.0 { 1.0 / scale } else { 0.0 };
        let xs = tensor.as_slice();
        self.codes.clear();
        self.codes.resize(xs.len(), 0);
        simd::quantize_sign_mag(&self.table, xs, inv, &mut self.codes);
        (
            vec![Payload::packed(&self.codes, 8)],
            Context::with_meta(tensor.shape().clone(), vec![scale]),
        )
    }

    fn decompress(&mut self, payloads: &[Payload], ctx: &Context) -> Tensor {
        let scale = ctx.meta[0];
        payloads[0].unpack_into(&mut self.codes);
        let mut data = vec![0.0f32; self.codes.len()];
        simd::dequant_sign_mag(&self.table, &self.codes, scale, &mut data);
        Tensor::new(data, ctx.shape.clone())
    }

    fn homomorphic(&mut self) -> Option<&mut dyn HomomorphicAggregate> {
        Some(self)
    }
}

impl HomomorphicAggregate for EightBit {
    fn fold_encoded(
        &mut self,
        payloads: PayloadList<'_>,
        ctx: &Context,
        acc: &mut [f32],
        first: bool,
        scratch: &mut FoldScratch,
    ) {
        let scale = ctx.meta[0];
        payloads.get(0).unpack_into(&mut scratch.codes);
        assert_eq!(scratch.codes.len(), acc.len(), "code count mismatch");
        if first {
            simd::dequant_sign_mag(&self.table, &scratch.codes, scale, acc);
        } else {
            simd::dequant_sign_mag_add(&self.table, &scratch.codes, scale, acc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;

    #[test]
    fn table_is_monotone_with_128_entries() {
        let q = EightBit::new();
        assert_eq!(q.table.len(), MAGNITUDES);
        assert!(q.table.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(q.table[0], 0.0);
        assert!(*q.table.last().unwrap() <= 1.0);
    }

    #[test]
    fn payload_is_one_byte_per_element() {
        let mut q = EightBit::new();
        let g = gradient(1000, 1);
        let (_, payloads, ctx) = roundtrip(&mut q, &g);
        assert_eq!(payloads[0].encoded_bytes(), 1000);
        assert_eq!(ctx.meta_bytes(), 4); // ‖g‖∞
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut q = EightBit::new();
        let g = gradient(500, 2);
        let (out, _, _) = roundtrip(&mut q, &g);
        let scale = g.norm_inf();
        for i in 0..g.len() {
            let err = (out[i] - g[i]).abs();
            // Worst case: half a code-book step at the value's octave, plus
            // the floor of the smallest code-word.
            let bound = (g[i].abs() / 16.0).max(scale * 0.01) + 1e-7;
            assert!(
                err <= bound,
                "elem {i}: {} vs {} (bound {bound})",
                out[i],
                g[i]
            );
        }
    }

    #[test]
    fn signs_are_preserved() {
        let mut q = EightBit::new();
        let g = Tensor::from_vec(vec![-1.0, 1.0, -0.5, 0.25]);
        let (out, _, _) = roundtrip(&mut q, &g);
        for i in 0..4 {
            assert_eq!(out[i].signum(), g[i].signum(), "sign flipped at {i}");
        }
    }

    #[test]
    fn zero_tensor_roundtrips_to_zero() {
        let mut q = EightBit::new();
        let g = Tensor::from_vec(vec![0.0; 16]);
        let (out, _, _) = roundtrip(&mut q, &g);
        assert_eq!(out.norm_inf(), 0.0);
    }

    #[test]
    fn vectorized_codec_matches_reference_encode_decode() {
        let mut q = EightBit::new();
        let g = gradient(777, 5);
        let scale = g.norm_inf();
        let inv = 1.0 / scale;
        let (payloads, ctx) = q.compress(&g, "g");
        let codes = payloads[0].unpack();
        for (i, (&v, &code)) in g.as_slice().iter().zip(&codes).enumerate() {
            let want = (u32::from(v < 0.0) << 7) | q.nearest_code(v.abs() * inv);
            assert_eq!(code, want, "encode diverged at {i}");
        }
        let out = q.decompress(&payloads, &ctx);
        for (i, (&d, &code)) in out.as_slice().iter().zip(&codes).enumerate() {
            assert_eq!(
                d.to_bits(),
                q.decode_code(code, scale).to_bits(),
                "decode diverged at {i}"
            );
        }
    }

    #[test]
    fn deterministic() {
        let mut q = EightBit::new();
        let g = gradient(100, 3);
        let (a, _, _) = roundtrip(&mut q, &g);
        let (b, _, _) = roundtrip(&mut q, &g);
        assert_eq!(a.as_slice(), b.as_slice());
    }
}
