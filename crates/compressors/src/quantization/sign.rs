//! The sign family: SignSGD, SIGNUM, EFsignSGD (§III-A).

#[cfg(test)]
use grace_core::CommStrategy;
use grace_core::{Compressor, Context, Payload};
use grace_tensor::pack::{pack_signs, unpack_signs};
use grace_tensor::Tensor;
use std::collections::HashMap;

fn compress_signs(tensor: &Tensor) -> Payload {
    let signs: Vec<bool> = tensor.as_slice().iter().map(|&v| v < 0.0).collect();
    Payload::Packed {
        data: pack_signs(&signs),
        bits: 1,
        count: tensor.len() as u32,
    }
}

fn decompress_signs(payload: &Payload, scale: f32, ctx: &Context) -> Tensor {
    let count = match payload {
        Payload::Packed { count, .. } => *count as usize,
        other => panic!("expected packed signs, got {other:?}"),
    };
    let signs = match payload {
        Payload::Packed { data, .. } => unpack_signs(data, count),
        _ => unreachable!(),
    };
    let data: Vec<f32> = signs
        .into_iter()
        .map(|neg| if neg { -scale } else { scale })
        .collect();
    Tensor::new(data, ctx.shape.clone())
}

/// SignSGD (Bernstein et al., ICML'18): transmits only the sign of every
/// element; decoding yields ±1.
///
/// The paper runs it without error feedback (Table I) and with vanilla SGD at
/// a sign-appropriate learning rate.
#[derive(Debug, Default)]
pub struct SignSgd;

impl SignSgd {
    /// Creates the compressor.
    pub fn new() -> Self {
        SignSgd
    }
}

impl Compressor for SignSgd {
    fn name(&self) -> String {
        "SignSGD".to_string()
    }

    fn compress(&mut self, tensor: &Tensor, _name: &str) -> (Vec<Payload>, Context) {
        (
            vec![compress_signs(tensor)],
            Context::shape_only(tensor.shape().clone()),
        )
    }

    fn decompress(&mut self, payloads: &[Payload], ctx: &Context) -> Tensor {
        decompress_signs(&payloads[0], 1.0, ctx)
    }

    fn supports_error_feedback(&self) -> bool {
        // EF harms SignSGD (§V-B); EFsignSGD is the fixed variant.
        true
    }
}

/// SIGNUM (Bernstein et al., ICLR'19): SignSGD on a momentum-filtered
/// gradient, `u ← β·u + (1−β)·g`, transmitting `sign(u)`.
#[derive(Debug)]
pub struct Signum {
    beta: f32,
    momentum: HashMap<String, Tensor>,
}

impl Default for Signum {
    fn default() -> Self {
        Self::new()
    }
}

impl Signum {
    /// Creates SIGNUM with the standard β = 0.9.
    pub fn new() -> Self {
        Self::with_beta(0.9)
    }

    /// Creates SIGNUM with an explicit momentum constant.
    ///
    /// # Panics
    ///
    /// Panics if β is outside `[0, 1)`.
    pub fn with_beta(beta: f32) -> Self {
        assert!((0.0..1.0).contains(&beta), "beta must be in [0,1)");
        Signum {
            beta,
            momentum: HashMap::new(),
        }
    }
}

impl Compressor for Signum {
    fn name(&self) -> String {
        "SIGNUM".to_string()
    }

    fn compress(&mut self, tensor: &Tensor, name: &str) -> (Vec<Payload>, Context) {
        let u = self
            .momentum
            .entry(name.to_string())
            .or_insert_with(|| tensor.zeros_like());
        u.scale(self.beta);
        u.axpy(1.0 - self.beta, tensor);
        (
            vec![compress_signs(u)],
            Context::shape_only(tensor.shape().clone()),
        )
    }

    fn decompress(&mut self, payloads: &[Payload], ctx: &Context) -> Tensor {
        decompress_signs(&payloads[0], 1.0, ctx)
    }
}

/// EFsignSGD (Karimireddy et al., ICML'19): sign compression scaled by the
/// mean absolute value `‖p‖₁/d`, designed to be run under error feedback
/// (which the framework's [`grace_core::ResidualMemory`] provides).
#[derive(Debug, Default)]
pub struct EfSignSgd;

impl EfSignSgd {
    /// Creates the compressor.
    pub fn new() -> Self {
        EfSignSgd
    }
}

impl Compressor for EfSignSgd {
    fn name(&self) -> String {
        "EFsignSGD".to_string()
    }

    fn compress(&mut self, tensor: &Tensor, _name: &str) -> (Vec<Payload>, Context) {
        let scale = if tensor.is_empty() {
            0.0
        } else {
            tensor.norm1() / tensor.len() as f32
        };
        (
            vec![compress_signs(tensor)],
            Context::with_meta(tensor.shape().clone(), vec![scale]),
        )
    }

    fn decompress(&mut self, payloads: &[Payload], ctx: &Context) -> Tensor {
        decompress_signs(&payloads[0], ctx.meta[0], ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;

    #[test]
    fn signsgd_payload_is_one_bit_per_element() {
        let mut c = SignSgd::new();
        let g = gradient(800, 1);
        let (out, payloads, _) = roundtrip(&mut c, &g);
        assert_eq!(payloads[0].encoded_bytes(), 100); // 800 bits
        for i in 0..g.len() {
            assert_eq!(out[i], if g[i] < 0.0 { -1.0 } else { 1.0 });
        }
    }

    #[test]
    fn signum_momentum_smooths_sign_flips() {
        let mut c = Signum::with_beta(0.9);
        // Feed a large positive gradient, then a small negative one: the
        // momentum keeps the sign positive.
        let big = Tensor::from_vec(vec![10.0]);
        let (p1, ctx1) = c.compress(&big, "w");
        assert_eq!(c.decompress(&p1, &ctx1)[0], 1.0);
        let small_neg = Tensor::from_vec(vec![-0.1]);
        let (p2, ctx2) = c.compress(&small_neg, "w");
        assert_eq!(
            c.decompress(&p2, &ctx2)[0],
            1.0,
            "momentum should hold sign"
        );
        // But repeated negatives eventually flip it.
        let mut flipped = false;
        for _ in 0..60 {
            let (p, ctx) = c.compress(&small_neg, "w");
            if c.decompress(&p, &ctx)[0] < 0.0 {
                flipped = true;
                break;
            }
        }
        assert!(flipped, "persistent negatives must flip the sign");
    }

    #[test]
    fn signum_state_is_per_tensor() {
        let mut c = Signum::new();
        let pos = Tensor::from_vec(vec![1.0]);
        let neg = Tensor::from_vec(vec![-1.0]);
        let (pa, ca) = c.compress(&pos, "a");
        let (pb, cb) = c.compress(&neg, "b");
        assert_eq!(c.decompress(&pa, &ca)[0], 1.0);
        assert_eq!(c.decompress(&pb, &cb)[0], -1.0);
    }

    #[test]
    fn efsignsgd_scale_is_mean_abs() {
        let mut c = EfSignSgd::new();
        let g = Tensor::from_vec(vec![1.0, -3.0, 2.0, -2.0]);
        let (out, payloads, ctx) = roundtrip(&mut c, &g);
        assert_eq!(ctx.meta[0], 2.0); // (1+3+2+2)/4
        assert_eq!(out.as_slice(), &[2.0, -2.0, 2.0, -2.0]);
        assert_eq!(payloads[0].encoded_bytes(), 1);
    }

    #[test]
    fn ef_residual_shrinks_with_efsignsgd() {
        use grace_core::{Memory, ResidualMemory};
        let mut c = EfSignSgd::new();
        let mut mem = ResidualMemory::new();
        let g = gradient(64, 5);
        // Two EF iterations: the residual stays bounded (ef fixes signSGD).
        let comp1 = mem.compensate("w", &g);
        let (p, ctx) = c.compress(&comp1, "w");
        let dec = c.decompress(&p, &ctx);
        mem.update("w", &comp1, &dec);
        let r1 = mem.residual("w").unwrap().norm2();
        let comp2 = mem.compensate("w", &g);
        let (p2, ctx2) = c.compress(&comp2, "w");
        let dec2 = c.decompress(&p2, &ctx2);
        mem.update("w", &comp2, &dec2);
        let r2 = mem.residual("w").unwrap().norm2();
        assert!(r1.is_finite() && r2.is_finite());
        assert!(r2 < 4.0 * g.norm2(), "residual exploding: {r2}");
    }

    #[test]
    fn names_and_strategy() {
        assert_eq!(SignSgd::new().name(), "SignSGD");
        assert_eq!(Signum::new().name(), "SIGNUM");
        assert_eq!(EfSignSgd::new().name(), "EFsignSGD");
        assert_eq!(SignSgd::new().strategy(), CommStrategy::Allgather);
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn signum_rejects_bad_beta() {
        let _ = Signum::with_beta(1.0);
    }
}
