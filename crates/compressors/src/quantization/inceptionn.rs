//! INCEPTIONN (Li et al., MICRO'18).

use grace_core::{Compressor, Context, Payload};
use grace_tensor::Tensor;

/// INCEPTIONN: per-element precision selection. Each 32-bit float is stored
/// at one of four levels — 0, 8, 16 or 32 bits — chosen by its magnitude
/// relative to `‖g‖∞`, plus a 2-bit tag per element identifying the level.
///
/// Small values tolerate more relative error at the same absolute error, so
/// thresholds are logarithmic in the norm: below `‖g‖∞·2⁻¹⁶` a value is
/// dropped; below `‖g‖∞·2⁻¹⁰` it gets 8 bits; below `‖g‖∞·2⁻⁴`, 16 bits;
/// otherwise full precision. The original work offloads this to an FPGA NIC;
/// here the compute cost is honestly charged on the CPU (see DESIGN.md §2).
#[derive(Debug, Clone, Default)]
pub struct Inceptionn;

/// Magnitude thresholds relative to the max-norm, from the least precise up.
const EXP_DROP: i32 = -16;
const EXP_8BIT: i32 = -10;
const EXP_16BIT: i32 = -4;

impl Inceptionn {
    /// Creates the compressor.
    pub fn new() -> Self {
        Inceptionn
    }
}

fn quantize_linear(mag: f32, lo: f32, hi: f32, levels: u32) -> u32 {
    let t = ((mag - lo) / (hi - lo)).clamp(0.0, 1.0);
    (t * (levels - 1) as f32).round() as u32
}

fn dequantize_linear(code: u32, lo: f32, hi: f32, levels: u32) -> f32 {
    lo + (hi - lo) * code as f32 / (levels - 1) as f32
}

impl Compressor for Inceptionn {
    fn name(&self) -> String {
        "INCEPTIONN".to_string()
    }

    fn compress(&mut self, tensor: &Tensor, _name: &str) -> (Vec<Payload>, Context) {
        let norm = tensor.norm_inf();
        let (t_drop, t8, t16) = (
            norm * 2.0f32.powi(EXP_DROP),
            norm * 2.0f32.powi(EXP_8BIT),
            norm * 2.0f32.powi(EXP_16BIT),
        );
        let mut tags = Vec::with_capacity(tensor.len());
        let mut codes8: Vec<u32> = Vec::new();
        let mut codes16: Vec<u32> = Vec::new();
        let mut full: Vec<f32> = Vec::new();
        for &v in tensor.as_slice() {
            let mag = v.abs();
            let sign = u32::from(v < 0.0);
            if norm == 0.0 || mag < t_drop {
                tags.push(0u32);
            } else if mag < t8 {
                tags.push(1);
                codes8.push((sign << 7) | quantize_linear(mag, t_drop, t8, 128));
            } else if mag < t16 {
                tags.push(2);
                codes16.push((sign << 15) | quantize_linear(mag, t8, t16, 32_768));
            } else {
                tags.push(3);
                full.push(v);
            }
        }
        (
            vec![
                Payload::packed(&tags, 2),
                Payload::packed(&codes8, 8),
                Payload::packed(&codes16, 16),
                Payload::F32(full),
            ],
            Context::with_meta(tensor.shape().clone(), vec![norm]),
        )
    }

    fn decompress(&mut self, payloads: &[Payload], ctx: &Context) -> Tensor {
        let norm = ctx.meta[0];
        let (t_drop, t8, t16) = (
            norm * 2.0f32.powi(EXP_DROP),
            norm * 2.0f32.powi(EXP_8BIT),
            norm * 2.0f32.powi(EXP_16BIT),
        );
        let tags = payloads[0].unpack();
        let codes8 = payloads[1].unpack();
        let codes16 = payloads[2].unpack();
        let full = payloads[3].as_f32();
        let (mut i8_, mut i16_, mut if_) = (0usize, 0usize, 0usize);
        let data: Vec<f32> = tags
            .into_iter()
            .map(|tag| match tag {
                0 => 0.0,
                1 => {
                    let code = codes8[i8_];
                    i8_ += 1;
                    let sign = if code >> 7 == 1 { -1.0 } else { 1.0 };
                    sign * dequantize_linear(code & 0x7F, t_drop, t8, 128)
                }
                2 => {
                    let code = codes16[i16_];
                    i16_ += 1;
                    let sign = if code >> 15 == 1 { -1.0 } else { 1.0 };
                    sign * dequantize_linear(code & 0x7FFF, t8, t16, 32_768)
                }
                _ => {
                    let v = full[if_];
                    if_ += 1;
                    v
                }
            })
            .collect();
        Tensor::new(data, ctx.shape.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;

    #[test]
    fn large_values_kept_exactly() {
        let mut c = Inceptionn::new();
        // All values within 2⁴ of the norm → full precision.
        let g = Tensor::from_vec(vec![1.0, -0.5, 0.25, 0.9]);
        let (out, _, _) = roundtrip(&mut c, &g);
        assert_eq!(out.as_slice(), g.as_slice());
    }

    #[test]
    fn tiny_values_dropped() {
        let mut c = Inceptionn::new();
        let g = Tensor::from_vec(vec![1.0, 1e-7]);
        let (out, _, _) = roundtrip(&mut c, &g);
        assert_eq!(out[0], 1.0);
        assert_eq!(out[1], 0.0);
    }

    #[test]
    fn midrange_values_quantized_with_bounded_error() {
        let mut c = Inceptionn::new();
        let g = Tensor::from_vec(vec![1.0, 0.01, 0.002, 0.0005]);
        let (out, _, _) = roundtrip(&mut c, &g);
        for i in 0..g.len() {
            let err = (out[i] - g[i]).abs();
            assert!(err <= 0.001 + g[i].abs() * 0.02, "elem {i}: err {err}");
        }
    }

    #[test]
    fn volume_shrinks_for_gradient_like_data() {
        let mut c = Inceptionn::new();
        let g = gradient(4000, 1);
        let (_, payloads, _) = roundtrip(&mut c, &g);
        let bytes: usize = payloads.iter().map(|p| p.encoded_bytes()).sum();
        assert!(
            bytes < 4000 * 4,
            "compressed {bytes} not smaller than raw {}",
            4000 * 4
        );
        // Tag stream is always 2 bits/element.
        assert_eq!(payloads[0].encoded_bytes(), 1000);
    }

    #[test]
    fn mixed_levels_reconstruct_in_order() {
        let mut c = Inceptionn::new();
        let g = Tensor::from_vec(vec![0.5, 1e-8, 0.001, 1.0, -0.003, 2e-5]);
        let (out, _, _) = roundtrip(&mut c, &g);
        assert_eq!(out[1], 0.0);
        assert_eq!(out[3], 1.0);
        assert_eq!(out[4].signum(), -1.0);
    }

    #[test]
    fn zero_tensor() {
        let mut c = Inceptionn::new();
        let g = Tensor::from_vec(vec![0.0; 5]);
        let (out, _, _) = roundtrip(&mut c, &g);
        assert_eq!(out.norm_inf(), 0.0);
    }
}
