//! Quantization methods (paper §III-A): every gradient element survives, at
//! reduced precision.

mod eight_bit;
mod inceptionn;
mod natural;
mod one_bit;
mod qsgd;
mod sign;
mod terngrad;

pub use eight_bit::EightBit;
pub use inceptionn::Inceptionn;
pub use natural::Natural;
pub use one_bit::OneBit;
pub use qsgd::Qsgd;
pub use sign::{EfSignSgd, SignSgd, Signum};
pub use terngrad::TernGrad;
