//! 1-bit SGD (Seide et al., INTERSPEECH'14).

use grace_core::{Compressor, Context, Payload};
use grace_tensor::pack::{pack_signs, unpack_signs};
use grace_tensor::Tensor;

/// 1-bit SGD: elements below a threshold τ (default 0) quantize to '0', the
/// rest to '1'; decoding maps '0'/'1' to the mean of the negative /
/// non-negative values of the local gradient, which travel as context
/// scalars. Seide et al. introduced the memory mechanism
/// `m_k = g_k − Q⁻¹(g̃_k)` that the framework's
/// [`grace_core::ResidualMemory`] supplies.
#[derive(Debug, Clone)]
pub struct OneBit {
    tau: f32,
}

impl OneBit {
    /// Creates 1-bit SGD with the default threshold τ = 0.
    pub fn new() -> Self {
        Self::with_threshold(0.0)
    }

    /// Creates 1-bit SGD with an explicit threshold.
    ///
    /// # Panics
    ///
    /// Panics if τ is not finite.
    pub fn with_threshold(tau: f32) -> Self {
        assert!(tau.is_finite(), "threshold must be finite");
        OneBit { tau }
    }
}

impl Default for OneBit {
    fn default() -> Self {
        Self::new()
    }
}

impl Compressor for OneBit {
    fn name(&self) -> String {
        "1-bit SGD".to_string()
    }

    fn compress(&mut self, tensor: &Tensor, _name: &str) -> (Vec<Payload>, Context) {
        let mut lo_sum = 0.0f64;
        let mut lo_n = 0usize;
        let mut hi_sum = 0.0f64;
        let mut hi_n = 0usize;
        let bits: Vec<bool> = tensor
            .as_slice()
            .iter()
            .map(|&v| {
                if v < self.tau {
                    lo_sum += f64::from(v);
                    lo_n += 1;
                    false
                } else {
                    hi_sum += f64::from(v);
                    hi_n += 1;
                    true
                }
            })
            .collect();
        let lo_mean = if lo_n > 0 {
            (lo_sum / lo_n as f64) as f32
        } else {
            0.0
        };
        let hi_mean = if hi_n > 0 {
            (hi_sum / hi_n as f64) as f32
        } else {
            0.0
        };
        (
            vec![Payload::Packed {
                data: pack_signs(&bits),
                bits: 1,
                count: tensor.len() as u32,
            }],
            Context::with_meta(tensor.shape().clone(), vec![lo_mean, hi_mean]),
        )
    }

    fn decompress(&mut self, payloads: &[Payload], ctx: &Context) -> Tensor {
        let (lo, hi) = (ctx.meta[0], ctx.meta[1]);
        let (data, count) = match &payloads[0] {
            Payload::Packed { data, count, .. } => (data, *count as usize),
            other => panic!("expected packed bits, got {other:?}"),
        };
        let values: Vec<f32> = unpack_signs(data, count)
            .into_iter()
            .map(|b| if b { hi } else { lo })
            .collect();
        Tensor::new(values, ctx.shape.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;

    #[test]
    fn decodes_to_group_means() {
        let mut c = OneBit::new();
        let g = Tensor::from_vec(vec![-2.0, -1.0, 1.0, 3.0]);
        let (out, payloads, ctx) = roundtrip(&mut c, &g);
        assert_eq!(ctx.meta, vec![-1.5, 2.0]);
        assert_eq!(out.as_slice(), &[-1.5, -1.5, 2.0, 2.0]);
        assert_eq!(payloads[0].encoded_bytes(), 1);
    }

    #[test]
    fn preserves_tensor_sum() {
        // Group-mean decoding preserves the total mass exactly.
        let mut c = OneBit::new();
        let g = gradient(333, 4);
        let (out, _, _) = roundtrip(&mut c, &g);
        assert!(
            (out.sum() - g.sum()).abs() < 1e-3,
            "{} vs {}",
            out.sum(),
            g.sum()
        );
    }

    #[test]
    fn custom_threshold_shifts_the_split() {
        let mut c = OneBit::with_threshold(2.0);
        let g = Tensor::from_vec(vec![1.0, 3.0]);
        let (out, _, _) = roundtrip(&mut c, &g);
        // 1.0 < τ goes to the low group even though it is positive.
        assert_eq!(out.as_slice(), &[1.0, 3.0]);
    }

    #[test]
    fn all_positive_tensor_has_empty_low_group() {
        let mut c = OneBit::new();
        let g = Tensor::from_vec(vec![1.0, 2.0, 3.0]);
        let (out, _, ctx) = roundtrip(&mut c, &g);
        assert_eq!(ctx.meta[0], 0.0);
        assert_eq!(out.as_slice(), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn works_under_error_feedback() {
        use grace_core::{Memory, ResidualMemory};
        let mut c = OneBit::new();
        let mut mem = ResidualMemory::new();
        let g = gradient(128, 9);
        let mut last_residual = f32::INFINITY;
        for _ in 0..3 {
            let comp = mem.compensate("w", &g);
            let (p, ctx) = c.compress(&comp, "w");
            let dec = c.decompress(&p, &ctx);
            mem.update("w", &comp, &dec);
            last_residual = mem.residual("w").unwrap().norm2();
        }
        assert!(last_residual.is_finite());
        assert!(last_residual < 3.0 * g.norm2());
    }
}
