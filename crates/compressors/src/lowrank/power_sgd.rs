//! PowerSGD (Vogels et al., NeurIPS'19).

use grace_core::{CommStrategy, Compressor, Context, Payload};
use grace_tensor::linalg::{matmul, matmul_transpose_a, orthonormalize_columns};
use grace_tensor::rng::{fill_gaussian, named_substream};
#[cfg(test)]
use grace_tensor::Shape;
use grace_tensor::Tensor;
use std::collections::HashMap;

/// PowerSGD: views each gradient as an `m×l` matrix `M` and maintains a
/// rank-`r` factorization by one step of power iteration per training step:
///
/// ```text
/// P = M·Q_prev;  orthonormalize(P);  Q = Mᵀ·P;  transmit (P, Q)
/// ```
///
/// Both factors are dense `f32` buffers of identical shape on every worker,
/// so they ride `Allreduce` (averaged while compressed — Algorithm 1 lines
/// 8–9); decompression is `P·Qᵀ`. The reused `Q` warm-starts the next power
/// iteration (per-tensor state, deterministically initialised from the
/// tensor name so all workers start in the same subspace). The estimator is
/// biased; the paper pairs it with error feedback.
#[derive(Debug)]
pub struct PowerSgd {
    rank: usize,
    q_state: HashMap<String, Vec<f32>>,
}

impl PowerSgd {
    /// Creates PowerSGD with target rank `rank` (the paper's evaluation uses
    /// rank 4).
    ///
    /// # Panics
    ///
    /// Panics if `rank == 0`.
    pub fn new(rank: usize) -> Self {
        assert!(rank > 0, "rank must be positive");
        PowerSgd {
            rank,
            q_state: HashMap::new(),
        }
    }

    /// The configured target rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    fn effective_rank(&self, m: usize, l: usize) -> usize {
        self.rank.min(m).min(l).max(1)
    }
}

impl Compressor for PowerSgd {
    fn name(&self) -> String {
        format!("PowerSGD({})", self.rank)
    }

    fn strategy(&self) -> CommStrategy {
        CommStrategy::Allreduce
    }

    fn compress(&mut self, tensor: &Tensor, name: &str) -> (Vec<Payload>, Context) {
        let (m, l) = tensor.shape().as_matrix();
        if m == 1 || l == 1 {
            // Rank-1-shaped tensors (biases, vectors) cannot be factorized
            // smaller; the original PowerSGD aggregates them uncompressed.
            return (
                vec![
                    Payload::F32(tensor.as_slice().to_vec()),
                    Payload::F32(Vec::new()),
                ],
                Context::with_meta(tensor.shape().clone(), vec![m as f32, l as f32, 0.0]),
            );
        }
        let r = self.effective_rank(m, l);
        let q = self.q_state.entry(name.to_string()).or_insert_with(|| {
            // Deterministic per-name init: every worker starts with the same
            // Q, keeping the aggregated factors meaningful.
            let mut rng = named_substream(POWER_SEED, name);
            let mut q = vec![0.0f32; l * r];
            fill_gaussian(&mut rng, &mut q, 1.0);
            orthonormalize_columns(&mut q, l, r);
            q
        });
        // One step of subspace iteration.
        let mut p = matmul(tensor.as_slice(), q, m, l, r);
        orthonormalize_columns(&mut p, m, r);
        let q_new = matmul_transpose_a(tensor.as_slice(), &p, m, l, r); // Q = Mᵀ·P : l×r
        *q = q_new.clone();
        (
            vec![Payload::F32(p), Payload::F32(q_new)],
            Context::with_meta(tensor.shape().clone(), vec![m as f32, l as f32, r as f32]),
        )
    }

    fn decompress(&mut self, payloads: &[Payload], ctx: &Context) -> Tensor {
        let m = ctx.meta[0] as usize;
        let l = ctx.meta[1] as usize;
        let r = ctx.meta[2] as usize;
        if r == 0 {
            // Uncompressed passthrough for rank-1-shaped tensors.
            return Tensor::new(payloads[0].as_f32().to_vec(), ctx.shape.clone());
        }
        let p = payloads[0].as_f32();
        let q = payloads[1].as_f32();
        // ĝ = P·Qᵀ : (m×r)·(r×l).
        let mut qt = vec![0.0f32; r * l];
        for li in 0..l {
            for ri in 0..r {
                qt[ri * l + li] = q[li * r + ri];
            }
        }
        let data = matmul(p, &qt, m, r, l);
        Tensor::new(data, ctx.shape.clone())
    }

    fn supports_error_feedback(&self) -> bool {
        true
    }
}

/// Seed constant for the shared Q initialisation (same on all workers).
const POWER_SEED: u64 = 0x9067_25D4_C0FF_EE00;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;

    #[test]
    fn exactly_recovers_rank_one_matrices() {
        let mut c = PowerSgd::new(2);
        // M = u·vᵀ is rank 1; rank-2 PowerSGD must capture it (after one
        // iteration from a random but full-rank Q).
        let u = [1.0f32, -2.0, 0.5, 3.0];
        let v = [2.0f32, 1.0, -1.0];
        let mut data = vec![0.0f32; 12];
        for i in 0..4 {
            for j in 0..3 {
                data[i * 3 + j] = u[i] * v[j];
            }
        }
        let g = Tensor::new(data.clone(), Shape::matrix(4, 3));
        let (p, ctx) = c.compress(&g, "w");
        let out = c.decompress(&p, &ctx);
        let err = out.sub(&g).norm2() / g.norm2();
        assert!(err < 1e-4, "rank-1 matrix not recovered: rel err {err}");
    }

    #[test]
    fn payload_size_is_m_plus_l_times_r() {
        let mut c = PowerSgd::new(4);
        let g = gradient(32 * 16, 1).reshape(Shape::matrix(32, 16));
        let (_, payloads, _) = roundtrip(&mut c, &g);
        assert_eq!(payloads[0].as_f32().len(), 32 * 4); // P: m×r
        assert_eq!(payloads[1].as_f32().len(), 16 * 4); // Q: l×r
        let bytes: usize = payloads.iter().map(|p| p.encoded_bytes()).sum();
        assert_eq!(bytes, (32 + 16) * 4 * 4);
        assert!(bytes < 32 * 16 * 4, "must beat the dense gradient");
    }

    #[test]
    fn warm_started_q_improves_approximation() {
        let mut c = PowerSgd::new(2);
        let g = gradient(24 * 12, 3).reshape(Shape::matrix(24, 12));
        let mut errs = Vec::new();
        for _ in 0..6 {
            let (p, ctx) = c.compress(&g, "w");
            let out = c.decompress(&p, &ctx);
            errs.push(out.sub(&g).norm2() / g.norm2());
        }
        assert!(
            errs.last().unwrap() <= errs.first().unwrap(),
            "power iteration should not regress: {errs:?}"
        );
        // Error must approach the best rank-2 approximation (strictly below 1).
        assert!(errs.last().unwrap() < &0.95);
    }

    #[test]
    fn vector_tensors_pass_through_uncompressed() {
        let mut c = PowerSgd::new(4);
        let g = gradient(17, 4); // shape [17] -> matrix (17, 1)
        let (out, payloads, _) = roundtrip(&mut c, &g);
        assert_eq!(payloads[0].as_f32().len(), 17);
        assert_eq!(payloads[1].as_f32().len(), 0);
        assert_eq!(out.as_slice(), g.as_slice(), "passthrough must be exact");
    }

    #[test]
    fn two_workers_share_initial_subspace() {
        let g = gradient(8 * 8, 5).reshape(Shape::matrix(8, 8));
        let mut a = PowerSgd::new(2);
        let mut b = PowerSgd::new(2);
        let (pa, _) = a.compress(&g, "layer/w");
        let (pb, _) = b.compress(&g, "layer/w");
        assert_eq!(pa, pb, "same name + same input must give same factors");
    }

    #[test]
    fn strategy_is_allreduce() {
        assert_eq!(PowerSgd::new(1).strategy(), CommStrategy::Allreduce);
    }
}
