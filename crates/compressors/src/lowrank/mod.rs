//! Low-rank methods (paper §III-D): factorize the gradient matrix.

mod power_sgd;

pub use power_sgd::PowerSgd;
