//! The compressor registry: one [`CompressorSpec`] per implemented method,
//! carrying the paper's Table-I metadata (class, `‖g̃‖₀`, nature of Q,
//! EF-On) and per-worker builders with the paper's default parameters.
//!
//! Default parameters follow the labels of the paper's Fig. 8:
//! `QSGD(64)`, `Topk(0.01)`, `Randk(0.01)`, `DGC(0.01)`, `SketchML(64)`,
//! `Adaptive(0.01)`, `Thresh(0.01)`, and PowerSGD at rank 4.

use crate::{
    AdaptiveThreshold, Dgc, EfSignSgd, EightBit, Inceptionn, Natural, OneBit, PowerSgd, Qsgd,
    RandomK, SignSgd, Signum, SketchMl, TernGrad, ThresholdV, TopK,
};
use grace_core::{
    Compressor, CompressorClass, CompressorSpec, Memory, Nature, NoMemory, OutputSize,
    ResidualMemory,
};

fn ef_memory() -> Box<dyn Memory> {
    Box::new(ResidualMemory::new())
}

fn no_memory() -> Box<dyn Memory> {
    Box::new(NoMemory::new())
}

#[allow(clippy::too_many_arguments)]
fn spec(
    id: &'static str,
    display: &'static str,
    class: CompressorClass,
    output_size: OutputSize,
    nature: Nature,
    ef_default: bool,
    codec_cost: (f64, f64),
    build: impl Fn(u64) -> Box<dyn Compressor> + Send + Sync + 'static,
) -> CompressorSpec {
    CompressorSpec {
        id,
        display,
        class,
        output_size,
        nature,
        ef_default,
        ops_per_tensor: codec_cost.0,
        ns_per_element: codec_cost.1,
        build: Box::new(build),
        build_memory: if ef_default {
            Box::new(ef_memory)
        } else {
            Box::new(no_memory)
        },
    }
}

/// All 16 implemented methods, in Table-I order.
pub fn all_specs() -> Vec<CompressorSpec> {
    use CompressorClass::*;
    use Nature::*;
    use OutputSize::*;
    vec![
        // --- Quantization ---
        spec(
            "eightbit",
            "8-bit",
            Quantization,
            Full,
            Deterministic,
            true,
            (8.0, 6.0),
            |_| Box::new(EightBit::new()),
        ),
        spec(
            "onebit",
            "1-bit SGD",
            Quantization,
            Full,
            Deterministic,
            true,
            (6.0, 3.0),
            |_| Box::new(OneBit::new()),
        ),
        spec(
            "signsgd",
            "SignSGD",
            Quantization,
            Full,
            Deterministic,
            false,
            (2.0, 1.5),
            |_| Box::new(SignSgd::new()),
        ),
        spec(
            "signum",
            "SIGNUM",
            Quantization,
            Full,
            Deterministic,
            false,
            (3.0, 2.0),
            |_| Box::new(Signum::new()),
        ),
        spec(
            "qsgd",
            "QSGD(64)",
            Quantization,
            Full,
            Random,
            false,
            (5.0, 4.0),
            |seed| Box::new(Qsgd::new(64, seed)),
        ),
        spec(
            "natural",
            "Natural",
            Quantization,
            Full,
            Random,
            true,
            (4.0, 3.0),
            |seed| Box::new(Natural::new(seed)),
        ),
        spec(
            "terngrad",
            "TernGrad",
            Quantization,
            Full,
            Random,
            false,
            (5.0, 3.0),
            |seed| Box::new(TernGrad::new(seed)),
        ),
        spec(
            "efsignsgd",
            "EFsignSGD",
            Quantization,
            Full,
            Deterministic,
            true,
            (3.0, 2.0),
            |_| Box::new(EfSignSgd::new()),
        ),
        spec(
            "inceptionn",
            "INCEPTIONN",
            Quantization,
            Full,
            Deterministic,
            false,
            (6.0, 6.0),
            |_| Box::new(Inceptionn::new()),
        ),
        // --- Sparsification ---
        spec(
            "randomk",
            "Randk(0.01)",
            Sparsification,
            K,
            Random,
            true,
            (2.0, 1.5),
            |seed| Box::new(RandomK::new(0.01, seed)),
        ),
        spec(
            "topk",
            "Topk(0.01)",
            Sparsification,
            K,
            Deterministic,
            true,
            (4.0, 4.0),
            |_| Box::new(TopK::new(0.01)),
        ),
        spec(
            "thresholdv",
            "Thresh(0.01)",
            Sparsification,
            Adaptive,
            Deterministic,
            true,
            (4.0, 5.0),
            |_| Box::new(ThresholdV::new(0.01)),
        ),
        spec(
            "dgc",
            "DGC(0.01)",
            Sparsification,
            Adaptive,
            Deterministic,
            false,
            (10.0, 8.0),
            |seed| Box::new(Dgc::new(0.01, seed)),
        ),
        // --- Hybrid ---
        spec(
            "adaptive",
            "Adaptive(0.01)",
            Hybrid,
            Adaptive,
            Deterministic,
            true,
            (10.0, 8.0),
            |_| Box::new(AdaptiveThreshold::new(0.01)),
        ),
        spec(
            "sketchml",
            "SketchML(64)",
            Hybrid,
            Adaptive,
            Random,
            true,
            (12.0, 25.0),
            |_| Box::new(SketchMl::new(64)),
        ),
        // --- Low rank ---
        spec(
            "powersgd",
            "PowerSGD(4)",
            LowRank,
            LowRankFactors,
            Deterministic,
            true,
            (6.0, 2.0),
            |_| Box::new(PowerSgd::new(4)),
        ),
    ]
}

/// Looks up one spec by its stable id.
pub fn find(id: &str) -> Option<CompressorSpec> {
    all_specs().into_iter().find(|s| s.id == id)
}

/// Builds a fleet of `n` per-worker compressor instances (worker `i` gets
/// seed `base_seed + i` derived streams) plus their paired memories.
pub fn build_fleet(spec: &CompressorSpec, n_workers: usize, base_seed: u64) -> grace_core::Fleet {
    let compressors = (0..n_workers)
        .map(|w| (spec.build)(grace_tensor::rng::substream(base_seed, w as u64).gen_seed()))
        .collect();
    let memories = (0..n_workers).map(|_| (spec.build_memory)()).collect();
    (compressors, memories)
}

/// Extension trait: derive a fresh `u64` seed from an RNG.
trait GenSeed {
    fn gen_seed(self) -> u64;
}

impl GenSeed for rand::rngs::StdRng {
    fn gen_seed(mut self) -> u64 {
        rand::Rng::gen(&mut self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::gradient;

    #[test]
    fn sixteen_methods_registered() {
        let specs = all_specs();
        assert_eq!(specs.len(), 16, "Table I lists 16 implemented methods");
        let mut ids: Vec<&str> = specs.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 16, "ids must be unique");
    }

    #[test]
    fn class_census_matches_table_one() {
        let specs = all_specs();
        let count = |c: CompressorClass| specs.iter().filter(|s| s.class == c).count();
        assert_eq!(count(CompressorClass::Quantization), 9);
        assert_eq!(count(CompressorClass::Sparsification), 4);
        assert_eq!(count(CompressorClass::Hybrid), 2);
        assert_eq!(count(CompressorClass::LowRank), 1);
    }

    #[test]
    fn every_method_roundtrips_every_shape() {
        for spec in all_specs() {
            for (len, shape) in [
                (60usize, grace_tensor::Shape::matrix(10, 6)),
                (7, grace_tensor::Shape::vector(7)),
                (24, grace_tensor::Shape::new(vec![2, 3, 4])),
            ] {
                let mut c = (spec.build)(13);
                let g = gradient(len, 17).reshape(shape.clone());
                let (payloads, ctx) = c.compress(&g, "layer/w");
                let out = c.decompress(&payloads, &ctx);
                assert_eq!(out.shape(), &shape, "{}: shape not preserved", spec.id);
                assert!(out.is_finite(), "{}: non-finite output", spec.id);
            }
        }
    }

    #[test]
    fn every_method_shrinks_large_gradients() {
        // All methods must transmit (much) less than raw float32 on a large
        // gradient-like tensor.
        for spec in all_specs() {
            let mut c = (spec.build)(5);
            // A realistic layer gradient: matrix-shaped, small magnitudes
            // (~1e-3). Fixed-threshold methods (Thresh) are volume-adaptive
            // in the input scale — the pitfall the paper notes in §III-B —
            // and PowerSGD only factorizes genuine matrices.
            let mut g = gradient(20_000, 23).reshape(grace_tensor::Shape::matrix(200, 100));
            g.scale(0.003);
            let (payloads, ctx) = c.compress(&g, "layer/w");
            let bytes = grace_core::payload::total_bytes(&payloads) + ctx.meta_bytes();
            assert!(
                bytes < 20_000 * 4,
                "{}: {bytes} bytes not smaller than raw {}",
                spec.id,
                20_000 * 4
            );
        }
    }

    #[test]
    fn ef_default_pairs_with_residual_memory() {
        for spec in all_specs() {
            let mem = (spec.build_memory)();
            assert_eq!(
                mem.is_active(),
                spec.ef_default,
                "{}: memory pairing inconsistent",
                spec.id
            );
        }
    }

    #[test]
    fn find_and_fleet() {
        let spec = find("topk").expect("topk registered");
        assert_eq!(spec.display, "Topk(0.01)");
        let (cs, ms) = build_fleet(&spec, 4, 99);
        assert_eq!(cs.len(), 4);
        assert_eq!(ms.len(), 4);
        assert!(find("nonexistent").is_none());
    }

    #[test]
    fn fleet_randomized_methods_get_distinct_streams() {
        let spec = find("randomk").expect("registered");
        let (mut cs, _) = build_fleet(&spec, 2, 7);
        let g = gradient(1000, 3);
        let (p0, _) = cs[0].compress(&g, "w");
        let (p1, _) = cs[1].compress(&g, "w");
        assert_ne!(
            p0[1].as_u32(),
            p1[1].as_u32(),
            "workers must sample different random indices"
        );
    }

    #[test]
    fn strategies_are_declared() {
        use grace_core::CommStrategy;
        for spec in all_specs() {
            let c = (spec.build)(0);
            let strat = c.strategy();
            if spec.id == "powersgd" {
                assert_eq!(strat, CommStrategy::Allreduce);
            } else {
                assert_eq!(strat, CommStrategy::Allgather, "{}", spec.id);
            }
        }
    }
}

#[cfg(test)]
mod edge_case_tests {
    use super::*;
    use grace_tensor::Tensor;

    fn all_including_extensions() -> Vec<CompressorSpec> {
        let mut specs = all_specs();
        specs.extend(crate::extensions::extension_specs());
        specs
    }

    #[test]
    fn every_method_handles_all_zero_tensors() {
        for spec in all_including_extensions() {
            let mut c = (spec.build)(1);
            let g = Tensor::from_vec(vec![0.0; 64]);
            let (p, ctx) = c.compress(&g, "w");
            let out = c.decompress(&p, &ctx);
            assert_eq!(out.shape(), g.shape(), "{}", spec.id);
            assert!(out.is_finite(), "{}", spec.id);
            // Pure sign methods decode zero inputs to ±1 by design; every
            // magnitude-carrying method must keep zeros at zero.
            if !["signsgd", "signum"].contains(&spec.id) {
                assert_eq!(out.norm_inf(), 0.0, "{}: zeros must stay zeros", spec.id);
            }
        }
    }

    #[test]
    fn every_method_handles_single_element_tensors() {
        for spec in all_including_extensions() {
            let mut c = (spec.build)(2);
            for v in [1.5f32, -2.0, 0.0] {
                let g = Tensor::from_vec(vec![v]);
                let (p, ctx) = c.compress(&g, "w");
                let out = c.decompress(&p, &ctx);
                assert_eq!(out.len(), 1, "{}", spec.id);
                assert!(out.is_finite(), "{}", spec.id);
            }
        }
    }

    #[test]
    fn every_method_handles_constant_tensors() {
        // Constant tensors are degenerate for norm-based scaling (all
        // elements tie at the max) and for quantile bucketing.
        for spec in all_including_extensions() {
            let mut c = (spec.build)(3);
            let g = Tensor::from_vec(vec![0.25; 33]);
            let (p, ctx) = c.compress(&g, "w");
            let out = c.decompress(&p, &ctx);
            assert!(out.is_finite(), "{}", spec.id);
            // Reconstruction must keep the right sign everywhere it is
            // non-zero.
            for v in out.as_slice() {
                assert!(*v >= 0.0, "{}: sign flipped on constant input", spec.id);
            }
        }
    }

    #[test]
    fn compress_is_repeatable_for_deterministic_methods() {
        use crate::testutil::gradient;
        for spec in all_including_extensions() {
            if spec.nature != Nature::Deterministic {
                continue;
            }
            // Skip methods with internal evolving state (momentum/low-rank
            // warm starts change outputs across calls by design).
            if ["signum", "dgc", "powersgd"].contains(&spec.id) {
                continue;
            }
            let g = gradient(128, 9);
            let mut c = (spec.build)(4);
            let (p1, _) = c.compress(&g, "w");
            let (p2, _) = c.compress(&g, "w");
            assert_eq!(p1, p2, "{}: deterministic method not repeatable", spec.id);
        }
    }
}
