//! Qsparse-local-SGD (Basu et al., NeurIPS'19) — the compression operator.

use grace_core::{Compressor, Context, Payload};
use grace_tensor::rng::substream;
use grace_tensor::select::{gather, top_k_indices_with};
use grace_tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;

/// The Qsparse composition: **quantization ∘ sparsification** — Top-k
/// selection followed by QSGD-style randomized quantization of the selected
/// values (§III-C "combine quantization with Top-k or Random-k
/// sparsification"). Error feedback absorbs both error sources at once.
///
/// Payloads: selected indices (4 B each) + per-value sign/level codes
/// (1 + ⌈log₂(s+1)⌉ bits) + the ℓ₂ norm of the selected values.
///
/// The "local" part of Qsparse-local-SGD (communicating every H steps) is
/// an orthogonal trainer-schedule feature; this type implements the
/// compression operator the method is built on.
#[derive(Debug)]
pub struct QsparseLocal {
    ratio: f64,
    s: u32,
    level_bits: u32,
    rng: StdRng,
    /// Pooled selection scratch, reused across same-size compress calls.
    scratch: Vec<u32>,
}

impl QsparseLocal {
    /// Creates the operator with sparsity `ratio` and `s` quantization
    /// levels.
    ///
    /// # Panics
    ///
    /// Panics if the ratio is outside `(0, 1]` or `s == 0`.
    pub fn new(ratio: f64, s: u32, seed: u64) -> Self {
        assert!(ratio > 0.0 && ratio <= 1.0, "ratio must be in (0,1]");
        assert!(s >= 1, "need at least one level");
        QsparseLocal {
            ratio,
            s,
            level_bits: 32 - s.leading_zeros(),
            rng: substream(seed, 0x95a5e),
            scratch: Vec::new(),
        }
    }

    /// The sparsity ratio.
    pub fn ratio(&self) -> f64 {
        self.ratio
    }
}

impl Compressor for QsparseLocal {
    fn name(&self) -> String {
        format!("Qsparse({},{})", self.ratio, self.s)
    }

    fn compress(&mut self, tensor: &Tensor, _name: &str) -> (Vec<Payload>, Context) {
        let d = tensor.len();
        let k = ((d as f64 * self.ratio).ceil() as usize).clamp(1, d.max(1));
        let indices = top_k_indices_with(tensor.as_slice(), k, &mut self.scratch);
        let values = gather(tensor, &indices);
        // QSGD over the selected values only.
        let norm = values.iter().map(|v| v * v).sum::<f32>().sqrt();
        let s = self.s as f32;
        let mut signs = Vec::with_capacity(values.len());
        let mut levels = Vec::with_capacity(values.len());
        for &v in &values {
            signs.push(u32::from(v < 0.0));
            if norm == 0.0 {
                levels.push(0);
                continue;
            }
            let scaled = v.abs() / norm * s;
            let l = scaled.floor();
            let p = scaled - l;
            levels.push((l as u32 + u32::from(self.rng.gen::<f32>() < p)).min(self.s));
        }
        (
            vec![
                Payload::U32(indices),
                Payload::packed(&signs, 1),
                Payload::packed(&levels, self.level_bits),
            ],
            Context::with_meta(tensor.shape().clone(), vec![norm]),
        )
    }

    fn decompress(&mut self, payloads: &[Payload], ctx: &Context) -> Tensor {
        let norm = ctx.meta[0];
        let indices = payloads[0].as_u32();
        let signs = payloads[1].unpack();
        let levels = payloads[2].unpack();
        let s = self.s as f32;
        let mut out = Tensor::zeros(ctx.shape.clone());
        for ((&i, sign), level) in indices.iter().zip(signs).zip(levels) {
            let v = norm * level as f32 / s;
            out[i as usize] = if sign == 1 { -v } else { v };
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;

    #[test]
    fn output_is_sparse_and_on_grid() {
        let mut c = QsparseLocal::new(0.1, 4, 1);
        let g = gradient(500, 1);
        let (out, payloads, ctx) = roundtrip(&mut c, &g);
        assert!(out.norm0() <= 50);
        let norm = ctx.meta[0];
        for v in out.as_slice() {
            if *v != 0.0 {
                let scaled = v.abs() / norm * 4.0;
                assert!((scaled - scaled.round()).abs() < 1e-4, "off-grid {v}");
            }
        }
        assert_eq!(payloads[0].as_u32().len(), 50);
    }

    #[test]
    fn beats_both_parents_on_volume() {
        let g = gradient(10_000, 2);
        let mut qsparse = QsparseLocal::new(0.01, 8, 3);
        let mut topk = crate::TopK::new(0.01);
        let mut qsgd = crate::Qsgd::new(8, 3);
        let bytes =
            |p: &[Payload], c: &Context| grace_core::payload::total_bytes(p) + c.meta_bytes();
        let (pq, cq) = qsparse.compress(&g, "w");
        let (pt, ct) = topk.compress(&g, "w");
        let (pg, cg) = qsgd.compress(&g, "w");
        assert!(bytes(&pq, &cq) < bytes(&pt, &ct), "not below topk");
        assert!(bytes(&pq, &cq) < bytes(&pg, &cg), "not below qsgd");
    }

    #[test]
    fn quantization_is_unbiased_given_selection() {
        // Conditioned on the Top-k selection (deterministic), the value
        // quantization is unbiased: mean over repeats approaches the exact
        // sparse tensor.
        let mut c = QsparseLocal::new(0.5, 4, 5);
        let g = gradient(64, 4);
        let mut exact = crate::TopK::new(0.5);
        let (pe, ce) = exact.compress(&g, "w");
        let target = exact.decompress(&pe, &ce);
        let mut acc = g.zeros_like();
        let reps = 2000;
        for _ in 0..reps {
            let (p, ctx) = c.compress(&g, "w");
            acc.add_assign(&c.decompress(&p, &ctx));
        }
        acc.scale(1.0 / reps as f32);
        let err = acc.sub(&target).norm2() / target.norm2().max(1e-6);
        assert!(err < 0.05, "conditional bias {err}");
    }

    #[test]
    fn works_under_error_feedback() {
        use grace_core::{Memory, ResidualMemory};
        let mut c = QsparseLocal::new(0.25, 8, 6);
        let mut mem = ResidualMemory::new();
        let g = gradient(128, 7);
        for _ in 0..4 {
            let comp = mem.compensate("w", &g);
            let (p, ctx) = c.compress(&comp, "w");
            let dec = c.decompress(&p, &ctx);
            mem.update("w", &comp, &dec);
        }
        let r = mem.residual("w").unwrap().norm2();
        assert!(r.is_finite() && r < 3.0 * g.norm2(), "residual {r}");
    }
}
