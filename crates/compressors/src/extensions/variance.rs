//! Variance-based sparsification (Wangni et al., NeurIPS'18).

use grace_core::{Compressor, Context, Payload};
use grace_tensor::rng::substream;
use grace_tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;

/// Unbiased sparse coding: each element survives with probability
/// `pᵢ = min(1, |gᵢ|/λ)` and is scaled by `1/pᵢ` when it does, so
/// `E[g̃] = g`. The scale λ is chosen so the *expected* number of survivors
/// matches a target budget `k = ⌈ratio·d⌉`, maximising sparsity subject to a
/// variance bound (§III-B "Variance-based sparsification").
#[derive(Debug)]
pub struct VarianceSparsifier {
    ratio: f64,
    rng: StdRng,
}

impl VarianceSparsifier {
    /// Creates the sparsifier with an expected-survivor ratio in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if the ratio is outside `(0, 1]`.
    pub fn new(ratio: f64, seed: u64) -> Self {
        assert!(ratio > 0.0 && ratio <= 1.0, "ratio must be in (0,1]");
        VarianceSparsifier {
            ratio,
            rng: substream(seed, 0x7a2),
        }
    }

    /// The expected survivor ratio.
    pub fn ratio(&self) -> f64 {
        self.ratio
    }

    /// Finds λ such that `Σ min(1, |gᵢ|/λ) ≈ budget` by bisection on λ.
    fn solve_lambda(values: &[f32], budget: f64) -> f32 {
        let max = values.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        if max == 0.0 {
            return 1.0;
        }
        let expected = |lambda: f32| -> f64 {
            values
                .iter()
                .map(|v| f64::from((v.abs() / lambda).min(1.0)))
                .sum()
        };
        let mut lo = max * 1e-8;
        // λ may exceed ‖g‖∞ (all pᵢ < 1): grow the bracket until the
        // expected count is at or below the budget.
        let mut hi = max;
        while expected(hi) > budget && hi < max * 1e9 {
            hi *= 2.0;
        }
        // Expected count is monotone decreasing in λ.
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            if expected(mid) > budget {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        hi
    }
}

impl Compressor for VarianceSparsifier {
    fn name(&self) -> String {
        format!("Variance({})", self.ratio)
    }

    fn compress(&mut self, tensor: &Tensor, _name: &str) -> (Vec<Payload>, Context) {
        let d = tensor.len();
        let budget = (d as f64 * self.ratio).max(1.0);
        let lambda = Self::solve_lambda(tensor.as_slice(), budget);
        let mut values = Vec::new();
        let mut indices = Vec::new();
        for (i, &v) in tensor.as_slice().iter().enumerate() {
            if !v.is_finite() {
                continue; // a diverged coordinate must not flood the wire
            }
            let p = (v.abs() / lambda).min(1.0);
            if p > 0.0 && self.rng.gen::<f32>() < p {
                values.push(v / p);
                indices.push(i as u32);
            }
        }
        (
            vec![Payload::F32(values), Payload::U32(indices)],
            Context::shape_only(tensor.shape().clone()),
        )
    }

    fn decompress(&mut self, payloads: &[Payload], ctx: &Context) -> Tensor {
        let mut out = Tensor::zeros(ctx.shape.clone());
        for (&v, &i) in payloads[0].as_f32().iter().zip(payloads[1].as_u32()) {
            out[i as usize] = v;
        }
        out
    }

    fn supports_error_feedback(&self) -> bool {
        false // unbiased: EF is unnecessary by design
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;

    #[test]
    fn survivor_count_matches_budget_in_expectation() {
        let mut c = VarianceSparsifier::new(0.1, 1);
        let g = gradient(2000, 1);
        let mut total = 0usize;
        let reps = 50;
        for _ in 0..reps {
            let (p, _) = c.compress(&g, "w");
            total += p[1].as_u32().len();
        }
        let mean = total as f64 / reps as f64;
        let budget = 200.0;
        assert!(
            (mean - budget).abs() < budget * 0.25,
            "mean survivors {mean} vs budget {budget}"
        );
    }

    #[test]
    fn estimator_is_unbiased() {
        let mut c = VarianceSparsifier::new(0.25, 2);
        let g = gradient(128, 3);
        assert_unbiased(&mut c, &g, 3000, 0.1);
    }

    #[test]
    fn large_elements_always_survive_unscaled() {
        // Elements with p=1 are transmitted exactly.
        let mut c = VarianceSparsifier::new(0.5, 3);
        let g = Tensor::from_vec(vec![100.0, 0.001, 0.001, 0.001]);
        for _ in 0..10 {
            let (p, ctx) = c.compress(&g, "w");
            let out = c.decompress(&p, &ctx);
            assert_eq!(out[0], 100.0, "dominant element must be exact");
        }
    }

    #[test]
    fn zero_tensor_sends_nothing() {
        let mut c = VarianceSparsifier::new(0.1, 4);
        let g = Tensor::from_vec(vec![0.0; 64]);
        let (p, ctx) = c.compress(&g, "w");
        assert!(p[0].as_f32().is_empty());
        assert_eq!(c.decompress(&p, &ctx).norm_inf(), 0.0);
    }

    #[test]
    fn lambda_bisection_is_monotone_correct() {
        let values = vec![1.0f32, 0.5, 0.25, 0.125];
        let l = VarianceSparsifier::solve_lambda(&values, 2.0);
        let expected: f64 = values.iter().map(|v| f64::from((v / l).min(1.0))).sum();
        assert!((expected - 2.0).abs() < 0.05, "expected count {expected}");
    }
}
