//! 3LC (Lim, Andersen & Kaminsky, MLSys'19).

use grace_core::{Compressor, Context, FoldScratch, HomomorphicAggregate, Payload, PayloadList};
use grace_tensor::Tensor;

/// 3LC: 3-value quantization with a sparsity multiplier plus aggressive
/// lossless encoding.
///
/// 1. `M = s·‖g‖∞` with sparsity multiplier `s ∈ [1, 2)`: larger `s` pushes
///    more elements to the zero code (§III-C);
/// 2. each element quantizes to `round(g/M) ∈ {−1, 0, +1}`;
/// 3. the trit stream is losslessly packed **5 trits per byte**
///    (3⁵ = 243 ≤ 256) — 3LC's actual base-3⁵ encoding — after zero-run
///    squeezing of all-zero groups (a run-length byte-code using the spare
///    code points 243..255 for runs of up to 13 all-zero groups).
///
/// 3LC pairs with error compensation; the framework's
/// [`grace_core::ResidualMemory`] provides it.
#[derive(Debug, Clone)]
pub struct ThreeLc {
    s: f32,
}

/// The byte coding five zero-trits (biased code 1): `11111₃` = 121.
const ZERO_GROUP: u8 = 121;
const RUN_BASE: u8 = 243;
const MAX_RUN: usize = 13; // codes 243..=255 encode runs of 1..=13 zero groups

impl ThreeLc {
    /// Creates 3LC with sparsity multiplier `s ∈ [1, 2)` (paper default 1).
    ///
    /// # Panics
    ///
    /// Panics if `s` is outside `[1, 2)`.
    pub fn new(s: f32) -> Self {
        assert!(
            (1.0..2.0).contains(&s),
            "sparsity multiplier must be in [1,2)"
        );
        ThreeLc { s }
    }

    /// The sparsity multiplier.
    pub fn multiplier(&self) -> f32 {
        self.s
    }
}

/// Packs trits (0=−1, 1=0, 2=+1) into base-3⁵ bytes with zero-run squeezing.
fn encode_trits(trits: &[u8]) -> Vec<u8> {
    let mut groups: Vec<u8> = trits
        .chunks(5)
        .map(|chunk| {
            let mut v: u16 = 0;
            for i in 0..5 {
                let t = chunk.get(i).copied().unwrap_or(1); // pad with zero-code
                v = v * 3 + t as u16;
            }
            v as u8
        })
        .collect();
    // Zero-run squeeze: replace runs of the all-zero group with run codes.
    let mut out = Vec::with_capacity(groups.len());
    let mut i = 0;
    while i < groups.len() {
        if groups[i] == ZERO_GROUP {
            let mut run = 1;
            while i + run < groups.len() && groups[i + run] == ZERO_GROUP && run < MAX_RUN {
                run += 1;
            }
            out.push(RUN_BASE + (run as u8 - 1));
            i += run;
        } else {
            out.push(groups[i]);
            i += 1;
        }
    }
    groups.clear();
    out
}

/// Inverse of [`encode_trits`]; `count` is the original trit count.
fn decode_trits(bytes: &[u8], count: usize) -> Vec<u8> {
    let mut trits = Vec::with_capacity(count);
    for &b in bytes {
        if b >= RUN_BASE {
            let run = (b - RUN_BASE) as usize + 1;
            trits.extend(std::iter::repeat_n(1u8, run * 5));
        } else {
            let mut v = b as u16;
            let mut chunk = [0u8; 5];
            for i in (0..5).rev() {
                chunk[i] = (v % 3) as u8;
                v /= 3;
            }
            trits.extend_from_slice(&chunk);
        }
    }
    trits.truncate(count);
    trits
}

impl Compressor for ThreeLc {
    fn name(&self) -> String {
        format!("3LC({})", self.s)
    }

    fn compress(&mut self, tensor: &Tensor, _name: &str) -> (Vec<Payload>, Context) {
        let m = self.s * tensor.norm_inf();
        let trits: Vec<u8> = tensor
            .as_slice()
            .iter()
            .map(|&v| {
                if m == 0.0 {
                    1u8
                } else {
                    // round(v/M) clamped to {-1,0,1}, biased to {0,1,2}.
                    ((v / m).round().clamp(-1.0, 1.0) as i8 + 1) as u8
                }
            })
            .collect();
        (
            vec![Payload::Bytes(encode_trits(&trits))],
            Context::with_meta(tensor.shape().clone(), vec![m]),
        )
    }

    fn decompress(&mut self, payloads: &[Payload], ctx: &Context) -> Tensor {
        let m = ctx.meta[0];
        let bytes = match &payloads[0] {
            Payload::Bytes(b) => b,
            other => panic!("expected a byte payload, got {other:?}"),
        };
        let data: Vec<f32> = decode_trits(bytes, ctx.shape.len())
            .into_iter()
            .map(|t| (t as f32 - 1.0) * m)
            .collect();
        Tensor::new(data, ctx.shape.clone())
    }

    fn homomorphic(&mut self) -> Option<&mut dyn HomomorphicAggregate> {
        Some(self)
    }
}

impl HomomorphicAggregate for ThreeLc {
    /// Folds the run-length byte stream directly — zero-run groups never
    /// materialize trits at all. Skipping the add for a zero run is exact:
    /// the decoded zero code is `(1.0 - 1.0) * M = +0.0` (`M ≥ 0`), and the
    /// accumulator can never hold `-0.0` (a `-0.0` would require decoding
    /// `-1.0 * M` with `M = 0`, but `M = 0` forces every trit to the zero
    /// code), so `x + 0.0 == x` bitwise everywhere a run lands.
    fn fold_encoded(
        &mut self,
        payloads: PayloadList<'_>,
        ctx: &Context,
        acc: &mut [f32],
        first: bool,
        _scratch: &mut FoldScratch,
    ) {
        let m = ctx.meta[0];
        let bytes = payloads.get(0).as_bytes();
        // Trit code 1 decoded verbatim — `(t - 1.0) * m` with `t = 1` —
        // written with a variable so clippy's eq_op lint accepts the
        // deliberately unsimplified expression.
        let zero_trit = 1.0f32;
        let zero = (zero_trit - 1.0) * m;
        let mut pos = 0usize;
        for &b in bytes {
            if pos >= acc.len() {
                break;
            }
            if b >= RUN_BASE {
                let run = ((b - RUN_BASE) as usize + 1) * 5;
                let end = (pos + run).min(acc.len());
                if first {
                    acc[pos..end].fill(zero);
                }
                pos = end;
            } else {
                let mut v = b as u16;
                let mut chunk = [0u8; 5];
                for i in (0..5).rev() {
                    chunk[i] = (v % 3) as u8;
                    v /= 3;
                }
                for &t in &chunk {
                    if pos >= acc.len() {
                        break;
                    }
                    let val = (t as f32 - 1.0) * m;
                    if first {
                        acc[pos] = val;
                    } else {
                        acc[pos] += val;
                    }
                    pos += 1;
                }
            }
        }
        assert_eq!(pos, acc.len(), "trit stream shorter than the tensor");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;

    #[test]
    fn trit_codec_roundtrips() {
        let trits = vec![0u8, 1, 2, 2, 1, 0, 1, 1, 1, 1, 1, 1, 1, 1, 1, 2, 0];
        let enc = encode_trits(&trits);
        assert_eq!(decode_trits(&enc, trits.len()), trits);
    }

    #[test]
    fn zero_runs_squeeze_hard() {
        // 100 all-zero trits = 20 zero groups -> 2 run bytes.
        let trits = vec![1u8; 100];
        let enc = encode_trits(&trits);
        assert_eq!(enc.len(), 2, "got {} bytes", enc.len());
        assert_eq!(decode_trits(&enc, 100), trits);
    }

    #[test]
    fn quantizes_to_three_levels() {
        let mut c = ThreeLc::new(1.0);
        let g = Tensor::from_vec(vec![1.0, -0.9, 0.1, -0.2, 0.6]);
        let (out, _, ctx) = roundtrip(&mut c, &g);
        let m = ctx.meta[0];
        assert_eq!(m, 1.0);
        assert_eq!(out.as_slice(), &[m, -m, 0.0, 0.0, m]);
    }

    #[test]
    fn larger_multiplier_zeroes_more() {
        let g = gradient(2000, 1);
        let count_nonzero = |s: f32| {
            let mut c = ThreeLc::new(s);
            let (p, ctx) = c.compress(&g, "w");
            c.decompress(&p, &ctx).norm0()
        };
        assert!(count_nonzero(1.9) <= count_nonzero(1.0));
    }

    #[test]
    fn sparse_gradients_compress_below_two_bits_per_element() {
        let mut g = gradient(10_000, 2);
        // Make it realistic: most mass near zero relative to the max.
        g.scale(1.0);
        g[17] = 50.0; // a dominant element pushes most trits to the zero code
        let mut c = ThreeLc::new(1.0);
        let (p, _) = c.compress(&g, "w");
        let bytes = p[0].encoded_bytes();
        assert!(bytes * 8 < 10_000, "not lossless-squeezed: {bytes} bytes");
    }

    #[test]
    fn roundtrip_on_random_gradients() {
        let mut c = ThreeLc::new(1.2);
        let g = gradient(777, 3);
        let (out, _, _) = roundtrip(&mut c, &g);
        // Every output value is in {-M, 0, M}.
        let m = 1.2 * g.norm_inf();
        for v in out.as_slice() {
            assert!(
                *v == 0.0 || (v.abs() - m).abs() < 1e-5,
                "non-ternary output {v}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "sparsity multiplier")]
    fn rejects_bad_multiplier() {
        let _ = ThreeLc::new(2.0);
    }
}
