//! Spectral low-rank compression (spectral-ATOMO / GradiVeQ style, §III-D).

use grace_core::{CommStrategy, Compressor, Context, Payload};
use grace_tensor::linalg::{matmul, matmul_transpose_a, orthonormalize_columns};
use grace_tensor::rng::{fill_gaussian, named_substream};
use grace_tensor::Tensor;

/// Truncated-SVD low-rank compression: unlike PowerSGD's single warm-started
/// power step, this runs `iterations` rounds of subspace iteration *per
/// gradient*, converging to the true top-`rank` singular subspace — the SVD
/// factorization spectral-ATOMO and GradiVeQ are built on. More compute per
/// step, better approximation per transmitted byte.
#[derive(Debug, Clone)]
pub struct SpectralLowRank {
    rank: usize,
    iterations: usize,
}

impl SpectralLowRank {
    /// Creates the compressor with a target rank and subspace-iteration
    /// count (3 is typically within a few percent of exact SVD).
    ///
    /// # Panics
    ///
    /// Panics if `rank` or `iterations` is zero.
    pub fn new(rank: usize, iterations: usize) -> Self {
        assert!(rank > 0, "rank must be positive");
        assert!(iterations > 0, "need at least one iteration");
        SpectralLowRank { rank, iterations }
    }

    /// The target rank.
    pub fn rank(&self) -> usize {
        self.rank
    }
}

impl Compressor for SpectralLowRank {
    fn name(&self) -> String {
        format!("Spectral({})", self.rank)
    }

    fn strategy(&self) -> CommStrategy {
        CommStrategy::Allreduce
    }

    fn compress(&mut self, tensor: &Tensor, name: &str) -> (Vec<Payload>, Context) {
        let (m, l) = tensor.shape().as_matrix();
        if m == 1 || l == 1 {
            return (
                vec![
                    Payload::F32(tensor.as_slice().to_vec()),
                    Payload::F32(Vec::new()),
                ],
                Context::with_meta(tensor.shape().clone(), vec![m as f32, l as f32, 0.0]),
            );
        }
        let r = self.rank.min(m).min(l);
        // Deterministic start so all workers iterate in the same subspace.
        let mut rng = named_substream(0x5bec_7841, name);
        let mut q = vec![0.0f32; l * r];
        fill_gaussian(&mut rng, &mut q, 1.0);
        orthonormalize_columns(&mut q, l, r);
        let mut p = vec![0.0f32; m * r];
        for _ in 0..self.iterations {
            p = matmul(tensor.as_slice(), &q, m, l, r);
            orthonormalize_columns(&mut p, m, r);
            q = matmul_transpose_a(tensor.as_slice(), &p, m, l, r);
            // Orthonormalize Q on all but the final round: the last Q must
            // carry the singular values so P·Qᵀ reconstructs the gradient.
        }
        (
            vec![Payload::F32(p), Payload::F32(q)],
            Context::with_meta(tensor.shape().clone(), vec![m as f32, l as f32, r as f32]),
        )
    }

    fn decompress(&mut self, payloads: &[Payload], ctx: &Context) -> Tensor {
        let m = ctx.meta[0] as usize;
        let l = ctx.meta[1] as usize;
        let r = ctx.meta[2] as usize;
        if r == 0 {
            return Tensor::new(payloads[0].as_f32().to_vec(), ctx.shape.clone());
        }
        let p = payloads[0].as_f32();
        let q = payloads[1].as_f32();
        let mut qt = vec![0.0f32; r * l];
        for li in 0..l {
            for ri in 0..r {
                qt[ri * l + li] = q[li * r + ri];
            }
        }
        Tensor::new(matmul(p, &qt, m, r, l), ctx.shape.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;
    use grace_tensor::Shape;

    #[test]
    fn beats_single_step_power_iteration() {
        // On a generic full-rank matrix, 3-round subspace iteration should
        // approximate at least as well as PowerSGD's cold single step.
        let g = gradient(40 * 24, 3).reshape(Shape::matrix(40, 24));
        let mut spectral = SpectralLowRank::new(4, 3);
        let (ps, cs) = spectral.compress(&g, "w");
        let err_s = spectral.decompress(&ps, &cs).sub(&g).norm2();
        let mut power = crate::PowerSgd::new(4);
        let (pp, cp) = power.compress(&g, "w");
        let err_p = power.decompress(&pp, &cp).sub(&g).norm2();
        assert!(
            err_s <= err_p * 1.05,
            "spectral {err_s} worse than single-step power {err_p}"
        );
    }

    #[test]
    fn exact_on_low_rank_inputs() {
        // Rank-2 matrix, rank-4 budget: reconstruction is (near-)exact.
        let mut data = vec![0.0f32; 12 * 8];
        for i in 0..12 {
            for j in 0..8 {
                data[i * 8 + j] =
                    (i as f32) * (j as f32 + 1.0) + ((i * i) as f32) * 0.5 * (j as f32 - 3.0);
            }
        }
        let g = Tensor::new(data, Shape::matrix(12, 8));
        let mut c = SpectralLowRank::new(4, 4);
        let (p, ctx) = c.compress(&g, "w");
        let err = c.decompress(&p, &ctx).sub(&g).norm2() / g.norm2();
        assert!(err < 1e-3, "rank-2 input not recovered: {err}");
    }

    #[test]
    fn payload_matches_factor_sizes() {
        let g = gradient(32 * 16, 5).reshape(Shape::matrix(32, 16));
        let mut c = SpectralLowRank::new(4, 2);
        let (p, _) = c.compress(&g, "w");
        assert_eq!(p[0].as_f32().len(), 32 * 4);
        assert_eq!(p[1].as_f32().len(), 16 * 4);
    }

    #[test]
    fn vectors_pass_through() {
        let g = gradient(33, 6);
        let mut c = SpectralLowRank::new(4, 2);
        let (out, _, _) = roundtrip(&mut c, &g);
        assert_eq!(out.as_slice(), g.as_slice());
    }

    #[test]
    fn deterministic_across_instances() {
        let g = gradient(16 * 8, 7).reshape(Shape::matrix(16, 8));
        let mut a = SpectralLowRank::new(2, 3);
        let mut b = SpectralLowRank::new(2, 3);
        let (pa, _) = a.compress(&g, "x/w");
        let (pb, _) = b.compress(&g, "x/w");
        assert_eq!(pa, pb);
    }
}
