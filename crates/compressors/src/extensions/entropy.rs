//! Entropy-coded compression adapter (Gajjala et al., the paper's reference 81).

use grace_core::{CommStrategy, Compressor, Context, Payload};
use grace_tensor::coding::HuffmanCode;
use grace_tensor::Tensor;

/// Wraps any compressor and Huffman-recodes its bit-packed payloads.
///
/// Quantizer code-words are heavily skewed toward zero, so entropy coding
/// packs them below their fixed bit-width — the follow-up the paper cites
/// for "efficiently packing and transmitting the quantized vectors" (§VI).
/// Non-packed payloads (floats, indices) pass through unchanged, and packed
/// streams that entropy coding would *inflate* are kept in fixed-width form
/// (the adapter never loses).
pub struct EntropyCoded<C> {
    inner: C,
}

/// Wire tags distinguishing the two encodings of a formerly-packed payload.
const TAG_FIXED: u8 = 0;
const TAG_HUFFMAN: u8 = 1;

impl<C: Compressor> EntropyCoded<C> {
    /// Wraps an inner compressor.
    pub fn new(inner: C) -> Self {
        EntropyCoded { inner }
    }

    /// A reference to the wrapped compressor.
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

fn recode(payload: Payload) -> Payload {
    match payload {
        Payload::Packed { data, bits, count } if bits <= 12 && count > 0 => {
            let symbols = grace_tensor::pack::unpack_bits(&data, bits, count as usize);
            let (lengths, stream, _) = HuffmanCode::encode_stream(&symbols, 1 << bits);
            // Self-describing frame: tag, bits, count, lengths, stream.
            let mut framed = Vec::with_capacity(stream.len() + lengths.len() + 10);
            framed.push(TAG_HUFFMAN);
            framed.push(bits as u8);
            framed.extend_from_slice(&count.to_le_bytes());
            framed.extend_from_slice(&lengths);
            framed.extend_from_slice(&stream);
            if framed.len() < data.len() + 6 {
                Payload::Bytes(framed)
            } else {
                let mut fixed = Vec::with_capacity(data.len() + 6);
                fixed.push(TAG_FIXED);
                fixed.push(bits as u8);
                fixed.extend_from_slice(&count.to_le_bytes());
                fixed.extend_from_slice(&data);
                Payload::Bytes(fixed)
            }
        }
        other => other,
    }
}

fn decode(payload: &Payload) -> Payload {
    match payload {
        Payload::Bytes(framed) if !framed.is_empty() => {
            let tag = framed[0];
            let bits = framed[1] as u32;
            let count = u32::from_le_bytes(framed[2..6].try_into().expect("4 bytes"));
            match tag {
                TAG_FIXED => Payload::Packed {
                    data: framed[6..].to_vec(),
                    bits,
                    count,
                },
                TAG_HUFFMAN => {
                    let alphabet = 1usize << bits;
                    let lengths = &framed[6..6 + alphabet];
                    let stream = &framed[6 + alphabet..];
                    let symbols = HuffmanCode::decode_stream(lengths, stream, count as usize);
                    Payload::packed(&symbols, bits)
                }
                other => panic!("unknown entropy-coding tag {other}"),
            }
        }
        other => other.clone(),
    }
}

impl<C: Compressor> Compressor for EntropyCoded<C> {
    fn name(&self) -> String {
        format!("{}+EC", self.inner.name())
    }

    fn strategy(&self) -> CommStrategy {
        // Byte payloads are not sum-compatible.
        CommStrategy::Allgather
    }

    fn compress(&mut self, tensor: &Tensor, name: &str) -> (Vec<Payload>, Context) {
        let (payloads, ctx) = self.inner.compress(tensor, name);
        (payloads.into_iter().map(recode).collect(), ctx)
    }

    fn decompress(&mut self, payloads: &[Payload], ctx: &Context) -> Tensor {
        let restored: Vec<Payload> = payloads.iter().map(decode).collect();
        self.inner.decompress(&restored, ctx)
    }

    fn supports_error_feedback(&self) -> bool {
        self.inner.supports_error_feedback()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;
    use crate::{Qsgd, TernGrad, TopK};
    use grace_core::payload::total_bytes;

    #[test]
    fn recoding_is_lossless_for_qsgd() {
        let g = gradient(2000, 1);
        let mut plain = Qsgd::new(64, 9);
        let mut coded = EntropyCoded::new(Qsgd::new(64, 9));
        let (pp, pc) = plain.compress(&g, "w");
        let (ep, ec) = coded.compress(&g, "w");
        let plain_out = plain.decompress(&pp, &pc);
        let coded_out = coded.decompress(&ep, &ec);
        assert_eq!(plain_out.as_slice(), coded_out.as_slice());
    }

    #[test]
    fn skewed_codewords_shrink() {
        // TernGrad on gradient-like data is mostly zeros: entropy coding
        // must beat the fixed 2-bit packing.
        let mut g = gradient(20_000, 2);
        g.scale(0.01);
        g[7] = 1.0; // dominant element squeezes everything else toward zero
        let mut plain = TernGrad::new(5);
        let mut coded = EntropyCoded::new(TernGrad::new(5));
        let (pp, _) = plain.compress(&g, "w");
        let (ep, _) = coded.compress(&g, "w");
        assert!(
            total_bytes(&ep) < total_bytes(&pp),
            "entropy-coded {} not below fixed {}",
            total_bytes(&ep),
            total_bytes(&pp)
        );
    }

    #[test]
    fn never_inflates_beyond_framing() {
        // Near-uniform code-words: the adapter falls back to fixed width
        // plus a 6-byte frame.
        let g = gradient(5000, 3);
        let mut plain = Qsgd::new(64, 11);
        let mut coded = EntropyCoded::new(Qsgd::new(64, 11));
        let (pp, _) = plain.compress(&g, "w");
        let (ep, _) = coded.compress(&g, "w");
        assert!(total_bytes(&ep) <= total_bytes(&pp) + 16 + 128);
    }

    #[test]
    fn passes_through_non_packed_payloads() {
        let g = gradient(500, 4);
        let mut coded = EntropyCoded::new(TopK::new(0.1));
        let (out, payloads, _) = roundtrip(&mut coded, &g);
        // Top-k payloads are F32 + U32: untouched by the adapter.
        assert!(matches!(payloads[0], Payload::F32(_)));
        assert!(matches!(payloads[1], Payload::U32(_)));
        assert_eq!(out.norm0(), 50);
        assert!(coded.name().ends_with("+EC"));
        let _ = coded.inner();
    }

    #[test]
    fn roundtrip_under_error_feedback() {
        use grace_core::{Memory, ResidualMemory};
        let mut c = EntropyCoded::new(Qsgd::new(16, 13));
        let mut mem = ResidualMemory::new();
        let g = gradient(256, 5);
        for _ in 0..3 {
            let comp = mem.compensate("w", &g);
            let (p, ctx) = c.compress(&comp, "w");
            let dec = c.decompress(&p, &ctx);
            mem.update("w", &comp, &dec);
        }
        assert!(mem.residual("w").unwrap().norm2().is_finite());
    }
}
