//! Sketched-SGD (Ivkin et al., NeurIPS'19).

use super::count_sketch::CountSketch;
use grace_core::{CommStrategy, Compressor, Context, Payload};
use grace_tensor::Tensor;

/// Sketched-SGD: each worker transmits a fixed-size **count-sketch** of its
/// gradient. Sketches are linear, so they ride `Allreduce`; the aggregated
/// sketch is then queried for the "heavy hitters" that approximate the
/// Top-k of the *summed* gradient (§III-B "Sketched-SGD … uses count-sketch
/// to select the heavy hitters").
#[derive(Debug, Clone)]
pub struct SketchedSgd {
    rows: usize,
    cols: usize,
    ratio: f64,
    /// Pooled selection scratch for the heavy-hitter top-k, reused across
    /// same-size decompress calls.
    scratch: Vec<u32>,
}

impl SketchedSgd {
    /// Creates Sketched-SGD with a `rows × cols` sketch recovering the top
    /// `ratio` fraction of coordinates.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are zero or the ratio is outside `(0, 1]`.
    pub fn new(rows: usize, cols: usize, ratio: f64) -> Self {
        assert!(rows > 0 && cols > 0, "sketch dimensions must be positive");
        assert!(ratio > 0.0 && ratio <= 1.0, "ratio must be in (0,1]");
        SketchedSgd {
            rows,
            cols,
            ratio,
            scratch: Vec::new(),
        }
    }

    /// Sketch dimensions `(rows, cols)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Effective column count for a `d`-element tensor: the configured
    /// width, capped so the whole sketch stays well below the dense tensor
    /// (fixed-size sketches only pay off on large tensors).
    fn effective_cols(&self, d: usize) -> usize {
        self.cols.min((d / (4 * self.rows)).max(2))
    }
}

impl Compressor for SketchedSgd {
    fn name(&self) -> String {
        format!("SketchedSGD({}x{})", self.rows, self.cols)
    }

    fn strategy(&self) -> CommStrategy {
        // Count-sketches are linear: summing tables sketches the summed
        // gradient.
        CommStrategy::Allreduce
    }

    fn compress(&mut self, tensor: &Tensor, _name: &str) -> (Vec<Payload>, Context) {
        let cols = self.effective_cols(tensor.len());
        let mut sketch = CountSketch::new(self.rows, cols);
        sketch.insert_dense(tensor.as_slice());
        (
            vec![Payload::F32(sketch.table().to_vec())],
            Context::shape_only(tensor.shape().clone()),
        )
    }

    fn decompress(&mut self, payloads: &[Payload], ctx: &Context) -> Tensor {
        let d = ctx.shape.len();
        let cols = self.effective_cols(d);
        let sketch = CountSketch::from_table(self.rows, cols, payloads[0].as_f32().to_vec());
        let k = ((d as f64 * self.ratio).ceil() as usize).clamp(1, d);
        // Estimate every coordinate from the sketch, keep the top-k.
        let estimates: Vec<f32> = (0..d).map(|i| sketch.estimate(i)).collect();
        let idx = grace_tensor::select::top_k_indices_with(&estimates, k, &mut self.scratch);
        let mut out = Tensor::zeros(ctx.shape.clone());
        for &i in &idx {
            out[i as usize] = estimates[i as usize];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;

    #[test]
    fn payload_size_saturates_at_the_configured_sketch() {
        let mut c = SketchedSgd::new(5, 64, 0.05);
        // Large tensors use the full sketch…
        let big = gradient(10_000, 1);
        let (p, _) = c.compress(&big, "w");
        assert_eq!(p[0].as_f32().len(), 5 * 64);
        // …small tensors shrink it so the sketch never dwarfs the input.
        let small = gradient(100, 1);
        let (p, _) = c.compress(&small, "w");
        assert!(p[0].as_f32().len() * 4 < 100 * 4 * 2);
    }

    #[test]
    fn recovers_dominant_coordinates() {
        let mut c = SketchedSgd::new(7, 512, 0.01);
        let mut g = gradient(2000, 2);
        g.scale(0.01); // background noise
        g[137] = 8.0;
        g[1500] = -6.0;
        let (p, ctx) = c.compress(&g, "w");
        let out = c.decompress(&p, &ctx);
        assert!((out[137] - 8.0).abs() < 1.0, "got {}", out[137]);
        assert!((out[1500] + 6.0).abs() < 1.0, "got {}", out[1500]);
        assert!(out.norm0() <= 20, "top-k budget exceeded: {}", out.norm0());
    }

    #[test]
    fn aggregated_sketches_recover_summed_heavy_hitters() {
        // Two workers with disjoint heavy hitters: the mean sketch finds
        // both (the Allreduce path of Algorithm 1).
        let mut c = SketchedSgd::new(7, 512, 0.005);
        let mut a = Tensor::from_vec(vec![0.0; 1000]);
        a[10] = 10.0;
        let mut b = Tensor::from_vec(vec![0.0; 1000]);
        b[700] = 12.0;
        let (pa, ctx) = c.compress(&a, "w");
        let (pb, _) = c.compress(&b, "w");
        // Mean of the two tables (what the trainer's allreduce computes).
        let mean: Vec<f32> = pa[0]
            .as_f32()
            .iter()
            .zip(pb[0].as_f32())
            .map(|(x, y)| (x + y) / 2.0)
            .collect();
        let out = c.decompress(&[Payload::F32(mean)], &ctx);
        assert!((out[10] - 5.0).abs() < 1.0, "got {}", out[10]);
        assert!((out[700] - 6.0).abs() < 1.0, "got {}", out[700]);
    }

    #[test]
    fn strategy_is_allreduce() {
        assert_eq!(
            SketchedSgd::new(3, 16, 0.1).strategy(),
            CommStrategy::Allreduce
        );
    }

    #[test]
    #[should_panic(expected = "ratio")]
    fn rejects_bad_ratio() {
        let _ = SketchedSgd::new(3, 16, 0.0);
    }
}
