//! Extension methods beyond the paper's 16 implementations.
//!
//! Table I *surveys* more methods than GRACE implements; this module adds
//! seven of the surveyed-but-unimplemented rows, plus an entropy-coding
//! adapter, built on the same API (the
//! "researchers implement novel methods" use case of §I):
//!
//! | Method | Table-I row | Class |
//! |---|---|---|
//! | [`VarianceSparsifier`] | Wangni et al., NeurIPS'18 | Sparsification |
//! | [`SketchedSgd`] | Ivkin et al., NeurIPS'19 | Sparsification |
//! | [`ThreeLc`] | Lim et al., MLSys'19 | Hybrid |
//! | [`QsparseLocal`] | Basu et al., NeurIPS'19 | Hybrid |
//! | [`SpectralLowRank`] | spectral-ATOMO / GradiVeQ | Low rank |
//! | [`LpcSvrg`] | Yu, Wu & Huang, AISTATS'19 | Quantization |
//! | [`Atomo`] | Wang et al., NeurIPS'18 | Low rank |
//! | [`EntropyCoded`] | Gajjala et al. (paper reference 81) | adapter over any method |
//!
//! [`extension_specs`] registers them with the same metadata scheme so the
//! experiment harness can sweep them alongside the core 16.

mod atomo;
mod count_sketch;
mod entropy;
mod lpc_svrg;
mod qsparse_local;
mod sketched_sgd;
mod spectral;
mod three_lc;
mod variance;

pub use atomo::Atomo;
pub use count_sketch::CountSketch;
pub use entropy::EntropyCoded;
pub use lpc_svrg::LpcSvrg;
pub use qsparse_local::QsparseLocal;
pub use sketched_sgd::SketchedSgd;
pub use spectral::SpectralLowRank;
pub use three_lc::ThreeLc;
pub use variance::VarianceSparsifier;

use grace_core::{
    Compressor, CompressorClass, CompressorSpec, Memory, Nature, NoMemory, OutputSize,
    ResidualMemory,
};

#[allow(clippy::too_many_arguments)]
fn make_spec(
    id: &'static str,
    display: &'static str,
    class: CompressorClass,
    output_size: OutputSize,
    nature: Nature,
    ef_default: bool,
    codec_cost: (f64, f64),
    build: impl Fn(u64) -> Box<dyn Compressor> + Send + Sync + 'static,
) -> CompressorSpec {
    CompressorSpec {
        id,
        display,
        class,
        output_size,
        nature,
        ef_default,
        ops_per_tensor: codec_cost.0,
        ns_per_element: codec_cost.1,
        build: Box::new(build),
        build_memory: if ef_default {
            Box::new(|| Box::new(ResidualMemory::new()) as Box<dyn Memory>)
        } else {
            Box::new(|| Box::new(NoMemory::new()) as Box<dyn Memory>)
        },
    }
}

/// The extension methods' specs (not part of the paper's implemented 16).
pub fn extension_specs() -> Vec<CompressorSpec> {
    use CompressorClass::*;
    use Nature::*;
    use OutputSize::*;
    vec![
        make_spec(
            "variance",
            "Variance(0.01)",
            Sparsification,
            Adaptive,
            Random,
            false, // unbiased by construction
            (6.0, 6.0),
            |seed| Box::new(VarianceSparsifier::new(0.01, seed)),
        ),
        make_spec(
            "sketchedsgd",
            "SketchedSGD(5x256)",
            Sparsification,
            K,
            Random,
            true,
            (8.0, 12.0),
            |_| Box::new(SketchedSgd::new(5, 256, 0.01)),
        ),
        make_spec(
            "threelc",
            "3LC(1.0)",
            Hybrid,
            Adaptive,
            Deterministic,
            true, // 3LC implements error compensation
            (6.0, 5.0),
            |_| Box::new(ThreeLc::new(1.0)),
        ),
        make_spec(
            "qsparselocal",
            "Qsparse(0.01,8)",
            Hybrid,
            Adaptive,
            Random,
            true,
            (7.0, 6.0),
            |seed| Box::new(QsparseLocal::new(0.01, 8, seed)),
        ),
        make_spec(
            "lpcsvrg",
            "LPC-SVRG(4)",
            Quantization,
            Full,
            Random,
            false, // unbiased randomized rounding
            (5.0, 4.0),
            |seed| Box::new(LpcSvrg::new(4, seed)),
        ),
        make_spec(
            "atomo",
            "ATOMO(2)",
            LowRank,
            LowRankFactors,
            Random,
            true,
            (9.0, 8.0),
            |seed| Box::new(Atomo::new(2.0, 6, seed)),
        ),
        make_spec(
            "ecqsgd",
            "QSGD(64)+EC",
            Quantization,
            Full,
            Random,
            false,
            (7.0, 7.0), // extra encode/decode passes over the code-words
            |seed| Box::new(EntropyCoded::new(crate::Qsgd::new(64, seed))),
        ),
        make_spec(
            "spectral",
            "Spectral(4)",
            LowRank,
            LowRankFactors,
            Deterministic,
            true,
            (8.0, 6.0),
            |_| Box::new(SpectralLowRank::new(4, 3)),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::gradient;

    #[test]
    fn eight_extensions_registered() {
        let specs = extension_specs();
        assert_eq!(specs.len(), 8);
        let core_ids: Vec<&str> = crate::registry::all_specs().iter().map(|s| s.id).collect();
        for s in &specs {
            assert!(!core_ids.contains(&s.id), "{} collides with core 16", s.id);
        }
    }

    #[test]
    fn extensions_roundtrip_and_shrink() {
        for spec in extension_specs() {
            let mut c = (spec.build)(7);
            let mut g = gradient(8_000, 3).reshape(grace_tensor::Shape::matrix(100, 80));
            g.scale(0.01);
            let (payloads, ctx) = c.compress(&g, "layer/w");
            let bytes = grace_core::payload::total_bytes(&payloads) + ctx.meta_bytes();
            let out = c.decompress(&payloads, &ctx);
            assert_eq!(out.shape(), g.shape(), "{}", spec.id);
            assert!(out.is_finite(), "{}", spec.id);
            assert!(
                bytes < 8_000 * 4,
                "{}: {bytes} >= raw {}",
                spec.id,
                8_000 * 4
            );
        }
    }
}
