//! LPC-SVRG's low-precision quantizer (Yu, Wu & Huang, AISTATS'19).

use grace_core::{Compressor, Context, FoldScratch, HomomorphicAggregate, Payload, PayloadList};
use grace_tensor::rng::substream;
use grace_tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;

/// The LPC (low-precision with clipping) quantizer of LPC-SVRG: a uniform
/// codebook `ε ∈ {−2^{w−1}δ, …, −δ, 0, δ, …, (2^{w−1}−1)δ}` with gradient
/// clipping to the codebook range and unbiased randomized rounding —
/// `g[i] ∈ [ε, ε+δ]` rounds to `ε` with probability `(ε+δ−g[i])/δ`
/// (paper §III-A). The scale δ adapts per tensor from `‖g‖∞`.
///
/// (The SVRG variance-reduction outer loop is an optimizer-schedule concern,
/// orthogonal to the compression operator, as with Qsparse-local-SGD.)
#[derive(Debug)]
pub struct LpcSvrg {
    w: u32,
    rng: StdRng,
}

impl LpcSvrg {
    /// Creates the quantizer with bit-width `w ∈ 2..=16` (levels `2^w`).
    ///
    /// # Panics
    ///
    /// Panics if `w` is outside `2..=16`.
    pub fn new(w: u32, seed: u64) -> Self {
        assert!((2..=16).contains(&w), "bit-width must be in 2..=16");
        LpcSvrg {
            w,
            rng: substream(seed, 0x19c),
        }
    }

    /// The configured bit-width.
    pub fn bit_width(&self) -> u32 {
        self.w
    }
}

impl Compressor for LpcSvrg {
    fn name(&self) -> String {
        format!("LPC-SVRG({})", self.w)
    }

    fn compress(&mut self, tensor: &Tensor, _name: &str) -> (Vec<Payload>, Context) {
        let half = 1i64 << (self.w - 1);
        // δ sized so the positive range covers ‖g‖∞.
        let norm = tensor.norm_inf();
        let delta = if norm > 0.0 {
            norm / (half - 1) as f32
        } else {
            1.0
        };
        let codes: Vec<u32> = tensor
            .as_slice()
            .iter()
            .map(|&v| {
                // Clip into the representable range, then randomized-round
                // between the two adjacent codebook points.
                let clipped = (v / delta).clamp(-(half as f32), (half - 1) as f32);
                let lo = clipped.floor();
                let p_up = clipped - lo;
                let level = lo as i64 + i64::from(self.rng.gen::<f32>() < p_up);
                (level.clamp(-half, half - 1) + half) as u32 // bias to 0..2^w
            })
            .collect();
        (
            vec![Payload::packed(&codes, self.w)],
            Context::with_meta(tensor.shape().clone(), vec![delta]),
        )
    }

    fn decompress(&mut self, payloads: &[Payload], ctx: &Context) -> Tensor {
        let delta = ctx.meta[0];
        let half = 1i64 << (self.w - 1);
        let data: Vec<f32> = payloads[0]
            .unpack()
            .into_iter()
            .map(|code| (code as i64 - half) as f32 * delta)
            .collect();
        Tensor::new(data, ctx.shape.clone())
    }

    fn homomorphic(&mut self) -> Option<&mut dyn HomomorphicAggregate> {
        Some(self)
    }
}

impl HomomorphicAggregate for LpcSvrg {
    fn fold_encoded(
        &mut self,
        payloads: PayloadList<'_>,
        ctx: &Context,
        acc: &mut [f32],
        first: bool,
        scratch: &mut FoldScratch,
    ) {
        // Same per-element expression as `decompress` — the biased codes sum
        // in codebook space, each worker shipping its own δ in the context.
        let delta = ctx.meta[0];
        let half = 1i64 << (self.w - 1);
        payloads.get(0).unpack_into(&mut scratch.codes);
        assert_eq!(scratch.codes.len(), acc.len(), "code count mismatch");
        if first {
            for (a, &code) in acc.iter_mut().zip(&scratch.codes) {
                *a = (code as i64 - half) as f32 * delta;
            }
        } else {
            for (a, &code) in acc.iter_mut().zip(&scratch.codes) {
                *a += (code as i64 - half) as f32 * delta;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;

    #[test]
    fn values_land_on_the_codebook_grid() {
        let mut c = LpcSvrg::new(4, 1);
        let g = gradient(300, 1);
        let (out, _, ctx) = roundtrip(&mut c, &g);
        let delta = ctx.meta[0];
        for v in out.as_slice() {
            let lv = v / delta;
            assert!((lv - lv.round()).abs() < 1e-4, "off-grid {v}");
            assert!((-8.0..=7.0).contains(&lv.round()), "out of codebook {lv}");
        }
    }

    #[test]
    fn rounding_is_unbiased_within_range() {
        let mut c = LpcSvrg::new(5, 2);
        let g = gradient(64, 3);
        assert_unbiased(&mut c, &g, 3000, 0.05);
    }

    #[test]
    fn error_is_bounded_by_delta() {
        let mut c = LpcSvrg::new(8, 3);
        let g = gradient(500, 4);
        let (out, _, ctx) = roundtrip(&mut c, &g);
        let delta = ctx.meta[0];
        for i in 0..g.len() {
            assert!(
                (out[i] - g[i]).abs() <= delta + 1e-6,
                "elem {i}: err {} > δ {delta}",
                (out[i] - g[i]).abs()
            );
        }
    }

    #[test]
    fn payload_is_w_bits_per_element() {
        let mut c = LpcSvrg::new(4, 5);
        let g = gradient(800, 6);
        let (_, payloads, _) = roundtrip(&mut c, &g);
        assert_eq!(payloads[0].encoded_bytes(), 400); // 4 bits × 800
    }

    #[test]
    fn zero_tensor_roundtrips() {
        let mut c = LpcSvrg::new(3, 7);
        let g = Tensor::from_vec(vec![0.0; 10]);
        let (out, _, _) = roundtrip(&mut c, &g);
        assert_eq!(out.norm_inf(), 0.0);
    }

    #[test]
    #[should_panic(expected = "bit-width")]
    fn rejects_one_bit() {
        let _ = LpcSvrg::new(1, 0);
    }
}
