//! A count-sketch: the mergeable frequency summary behind Sketched-SGD.

/// A count-sketch over `d`-dimensional vectors: `rows` independent hash
/// rows of `cols` counters with ±1 sign hashes. Sketches of two vectors sum
/// to the sketch of their sum (linearity), which is what lets Sketched-SGD
/// aggregate worker sketches with a plain all-reduce.
#[derive(Debug, Clone, PartialEq)]
pub struct CountSketch {
    rows: usize,
    cols: usize,
    table: Vec<f32>,
}

/// Cheap deterministic 64-bit mixer for the hash families.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x = (x ^ (x >> 33)).wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    x ^ (x >> 33)
}

impl CountSketch {
    /// Creates an empty sketch.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "sketch dimensions must be positive");
        CountSketch {
            rows,
            cols,
            table: vec![0.0; rows * cols],
        }
    }

    /// Rebuilds a sketch from its raw counter table (e.g. after allreduce).
    ///
    /// # Panics
    ///
    /// Panics if the table size does not match.
    pub fn from_table(rows: usize, cols: usize, table: Vec<f32>) -> Self {
        assert_eq!(table.len(), rows * cols, "table size mismatch");
        CountSketch { rows, cols, table }
    }

    /// The raw counters (row-major), for transmission.
    pub fn table(&self) -> &[f32] {
        &self.table
    }

    /// Sketch dimensions `(rows, cols)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    fn bucket(&self, row: usize, index: usize) -> (usize, f32) {
        let h = mix((row as u64) << 32 | index as u64);
        let col = (h % self.cols as u64) as usize;
        let sign = if (h >> 63) == 1 { -1.0 } else { 1.0 };
        (row * self.cols + col, sign)
    }

    /// Adds `value` at coordinate `index`.
    pub fn update(&mut self, index: usize, value: f32) {
        for row in 0..self.rows {
            let (slot, sign) = self.bucket(row, index);
            self.table[slot] += sign * value;
        }
    }

    /// Sketches an entire dense vector.
    pub fn insert_dense(&mut self, values: &[f32]) {
        for (i, &v) in values.iter().enumerate() {
            if v != 0.0 {
                self.update(i, v);
            }
        }
    }

    /// Point estimate of coordinate `index` (median of the row estimates —
    /// the classic heavy-hitter estimator).
    pub fn estimate(&self, index: usize) -> f32 {
        let mut est: Vec<f32> = (0..self.rows)
            .map(|row| {
                let (slot, sign) = self.bucket(row, index);
                sign * self.table[slot]
            })
            .collect();
        est.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let mid = est.len() / 2;
        if est.len() % 2 == 1 {
            est[mid]
        } else {
            0.5 * (est[mid - 1] + est[mid])
        }
    }

    /// Merges another sketch (must have identical dimensions).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn merge(&mut self, other: &CountSketch) {
        assert_eq!(self.dims(), other.dims(), "sketch dimension mismatch");
        for (a, b) in self.table.iter_mut().zip(&other.table) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_heavy_hitter_recovered_exactly_in_sign_and_scale() {
        let mut sk = CountSketch::new(5, 64);
        sk.update(7, 10.0);
        let est = sk.estimate(7);
        assert_eq!(est, 10.0, "lone heavy hitter must be exact");
        // An untouched coordinate estimates (near) zero.
        assert_eq!(sk.estimate(8), 0.0);
    }

    #[test]
    fn heavy_hitters_dominate_noise() {
        let mut sk = CountSketch::new(7, 256);
        let d = 2000;
        let mut dense = vec![0.01f32; d];
        dense[42] = 5.0;
        dense[900] = -4.0;
        sk.insert_dense(&dense);
        let e42 = sk.estimate(42);
        let e900 = sk.estimate(900);
        assert!((e42 - 5.0).abs() < 0.5, "estimate {e42}");
        assert!((e900 + 4.0).abs() < 0.5, "estimate {e900}");
        // Most light coordinates estimate small.
        let light: f32 = (0..20).map(|i| sk.estimate(i).abs()).sum::<f32>() / 20.0;
        assert!(light < 1.0, "light coordinates too noisy: {light}");
    }

    #[test]
    fn linearity_merge_equals_sketch_of_sum() {
        let mut a = CountSketch::new(3, 32);
        let mut b = CountSketch::new(3, 32);
        let mut whole = CountSketch::new(3, 32);
        a.update(1, 2.0);
        b.update(1, 3.0);
        b.update(9, -1.0);
        whole.update(1, 5.0);
        whole.update(9, -1.0);
        a.merge(&b);
        assert_eq!(a.table(), whole.table());
    }

    #[test]
    fn from_table_roundtrip() {
        let mut sk = CountSketch::new(2, 8);
        sk.update(3, 1.5);
        let rebuilt = CountSketch::from_table(2, 8, sk.table().to_vec());
        assert_eq!(rebuilt.estimate(3), sk.estimate(3));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn merge_rejects_mismatched_dims() {
        let mut a = CountSketch::new(2, 8);
        let b = CountSketch::new(2, 16);
        a.merge(&b);
    }
}
