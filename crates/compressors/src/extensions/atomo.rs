//! ATOMO (Wang et al., NeurIPS'18) — spectral atomic decomposition.

use grace_core::{Compressor, Context, Payload};
use grace_tensor::rng::{fill_gaussian, substream};
use grace_tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;

/// Spectral ATOMO: decompose the gradient matrix into singular triplets
/// (the atoms), allocate sampling probabilities `pᵢ` that minimise variance
/// under the sparsity budget `‖p‖₁ = s`, sample each atom with probability
/// `pᵢ`, and transmit kept atoms scaled by `1/pᵢ` (unbiased, §III-D).
///
/// The top `max_atoms` singular triplets are extracted by power iteration
/// with deflation; the spectral tail is dropped (the paper's low-rank
/// approximation step).
#[derive(Debug)]
pub struct Atomo {
    budget: f64,
    max_atoms: usize,
    power_iters: usize,
    rng: StdRng,
}

impl Atomo {
    /// Creates spectral ATOMO with sparsity budget `s` (expected number of
    /// atoms transmitted) over at most `max_atoms` extracted triplets.
    ///
    /// # Panics
    ///
    /// Panics if `budget <= 0` or `max_atoms == 0`.
    pub fn new(budget: f64, max_atoms: usize, seed: u64) -> Self {
        assert!(budget > 0.0, "budget must be positive");
        assert!(max_atoms > 0, "need at least one atom");
        Atomo {
            budget,
            max_atoms,
            power_iters: 8,
            rng: substream(seed, 0xa7040),
        }
    }

    /// The sparsity budget `s = ‖p‖₁`.
    pub fn budget(&self) -> f64 {
        self.budget
    }
}

/// Top-`r` singular triplets of an `m×l` matrix by power iteration with
/// deflation. Returns `(σ, u, v)` with `‖u‖ = ‖v‖ = 1`, σ descending.
fn truncated_svd(
    buf: &[f32],
    m: usize,
    l: usize,
    r: usize,
    iters: usize,
    rng: &mut StdRng,
) -> Vec<(f32, Vec<f32>, Vec<f32>)> {
    let mut work = buf.to_vec();
    let mut triplets = Vec::with_capacity(r);
    for _ in 0..r {
        // Power-iterate v on (WᵀW).
        let mut v = vec![0.0f32; l];
        fill_gaussian(rng, &mut v, 1.0);
        normalize(&mut v);
        let mut u = vec![0.0f32; m];
        for _ in 0..iters {
            // u = W v
            for (i, ui) in u.iter_mut().enumerate() {
                *ui = (0..l).map(|j| work[i * l + j] * v[j]).sum();
            }
            let un = normalize(&mut u);
            if un == 0.0 {
                break;
            }
            // v = Wᵀ u
            for (j, vj) in v.iter_mut().enumerate() {
                *vj = (0..m).map(|i| work[i * l + j] * u[i]).sum();
            }
            normalize(&mut v);
        }
        // σ = uᵀ W v
        let mut sigma = 0.0f32;
        for i in 0..m {
            for j in 0..l {
                sigma += u[i] * work[i * l + j] * v[j];
            }
        }
        if sigma.abs() < 1e-9 {
            break;
        }
        // Deflate.
        for i in 0..m {
            for j in 0..l {
                work[i * l + j] -= sigma * u[i] * v[j];
            }
        }
        triplets.push((sigma, u.clone(), v.clone()));
    }
    triplets
}

fn normalize(v: &mut [f32]) -> f32 {
    let n = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if n > 1e-12 {
        v.iter_mut().for_each(|x| *x /= n);
    }
    n
}

/// ATOMO's variance-optimal probability allocation under `‖p‖₁ = s`:
/// water-filling — `pᵢ ∝ λᵢ`, saturating at 1 and redistributing.
pub(crate) fn allocate_probabilities(lambdas: &[f32], budget: f64) -> Vec<f64> {
    let n = lambdas.len();
    let mut p = vec![0.0f64; n];
    if n == 0 {
        return p;
    }
    let mut saturated = vec![false; n];
    loop {
        let free_mass: f64 = (0..n)
            .filter(|&i| !saturated[i])
            .map(|i| f64::from(lambdas[i].abs()))
            .sum();
        let remaining = budget - saturated.iter().filter(|&&s| s).count() as f64;
        if remaining <= 0.0 {
            break;
        }
        if free_mass <= 0.0 {
            break;
        }
        let scale = remaining / free_mass;
        let mut newly_saturated = false;
        for i in 0..n {
            if saturated[i] {
                p[i] = 1.0;
                continue;
            }
            p[i] = f64::from(lambdas[i].abs()) * scale;
            if p[i] >= 1.0 {
                saturated[i] = true;
                newly_saturated = true;
            }
        }
        if !newly_saturated {
            break;
        }
    }
    p.iter_mut().for_each(|v| *v = v.clamp(0.0, 1.0));
    p
}

impl Compressor for Atomo {
    fn name(&self) -> String {
        format!("ATOMO({})", self.budget)
    }

    fn compress(&mut self, tensor: &Tensor, _name: &str) -> (Vec<Payload>, Context) {
        let (m, l) = tensor.shape().as_matrix();
        if m == 1 || l == 1 {
            // Rank-1-shaped tensors: pass through (as in the low-rank family).
            return (
                vec![Payload::F32(tensor.as_slice().to_vec())],
                Context::with_meta(tensor.shape().clone(), vec![m as f32, l as f32, 0.0]),
            );
        }
        let r = self.max_atoms.min(m).min(l);
        let triplets = truncated_svd(tensor.as_slice(), m, l, r, self.power_iters, &mut self.rng);
        let lambdas: Vec<f32> = triplets.iter().map(|(s, _, _)| *s).collect();
        let probs = allocate_probabilities(&lambdas, self.budget);
        // Sample atoms; kept atoms are scaled by λ/p (unbiased estimator).
        let mut flat = Vec::new();
        let mut kept = 0u32;
        for ((sigma, u, v), p) in triplets.into_iter().zip(probs) {
            if p > 0.0 && self.rng.gen::<f64>() < p {
                kept += 1;
                flat.push((sigma as f64 / p) as f32);
                flat.extend_from_slice(&u);
                flat.extend_from_slice(&v);
            }
        }
        (
            vec![Payload::F32(flat)],
            Context::with_meta(
                tensor.shape().clone(),
                vec![m as f32, l as f32, kept as f32],
            ),
        )
    }

    fn decompress(&mut self, payloads: &[Payload], ctx: &Context) -> Tensor {
        let m = ctx.meta[0] as usize;
        let l = ctx.meta[1] as usize;
        let kept = ctx.meta[2] as usize;
        if kept == 0 && ctx.meta[2] == 0.0 && (m == 1 || l == 1) {
            return Tensor::new(payloads[0].as_f32().to_vec(), ctx.shape.clone());
        }
        let flat = payloads[0].as_f32();
        let stride = 1 + m + l;
        let mut out = vec![0.0f32; m * l];
        for a in 0..kept {
            let base = a * stride;
            let sigma = flat[base];
            let u = &flat[base + 1..base + 1 + m];
            let v = &flat[base + 1 + m..base + stride];
            for i in 0..m {
                let su = sigma * u[i];
                for j in 0..l {
                    out[i * l + j] += su * v[j];
                }
            }
        }
        Tensor::new(out, ctx.shape.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;
    use grace_tensor::Shape;

    #[test]
    fn truncated_svd_recovers_known_spectrum() {
        // Diagonal-like matrix with singular values 4, 2, 1.
        let mut buf = vec![0.0f32; 4 * 3];
        buf[0] = 4.0; // (0,0)
        buf[4] = 2.0; // (1,1)
        buf[8] = 1.0; // (2,2)
        let mut rng = substream(1, 1);
        let trip = truncated_svd(&buf, 4, 3, 3, 30, &mut rng);
        assert_eq!(trip.len(), 3);
        let sigmas: Vec<f32> = trip.iter().map(|(s, _, _)| s.abs()).collect();
        assert!((sigmas[0] - 4.0).abs() < 1e-3, "{sigmas:?}");
        assert!((sigmas[1] - 2.0).abs() < 1e-3, "{sigmas:?}");
        assert!((sigmas[2] - 1.0).abs() < 1e-3, "{sigmas:?}");
    }

    #[test]
    fn probability_allocation_respects_budget_and_saturation() {
        let p = allocate_probabilities(&[10.0, 1.0, 1.0], 2.0);
        // Dominant atom saturates at 1; the rest split the remaining mass.
        assert_eq!(p[0], 1.0);
        assert!((p[1] - 0.5).abs() < 1e-9);
        assert!((p[2] - 0.5).abs() < 1e-9);
        let total: f64 = p.iter().sum();
        assert!((total - 2.0).abs() < 1e-9);
    }

    #[test]
    fn allocation_with_budget_above_count_saturates_all() {
        let p = allocate_probabilities(&[1.0, 2.0], 5.0);
        assert_eq!(p, vec![1.0, 1.0]);
        assert!(allocate_probabilities(&[], 2.0).is_empty());
    }

    #[test]
    fn atomo_is_unbiased_over_the_extracted_subspace() {
        // A rank-2 matrix whose atoms are fully captured: the sampled
        // estimator must average back to the matrix itself.
        let mut data = vec![0.0f32; 8 * 6];
        for i in 0..8 {
            for j in 0..6 {
                data[i * 6 + j] =
                    (i as f32 + 1.0) * 0.3 * (j as f32 - 2.5) + if i % 2 == 0 { 0.5 } else { -0.5 };
            }
        }
        let g = Tensor::new(data, Shape::matrix(8, 6));
        let mut c = Atomo::new(1.5, 4, 3);
        assert_unbiased(&mut c, &g, 3000, 0.1);
    }

    #[test]
    fn budget_controls_transmitted_atoms() {
        let g = gradient(32 * 16, 5).reshape(Shape::matrix(32, 16));
        let mut small = Atomo::new(1.0, 8, 7);
        let mut large = Atomo::new(6.0, 8, 7);
        let count = |c: &mut Atomo| {
            let mut total = 0usize;
            for _ in 0..30 {
                let (_, ctx) = c.compress(&g, "w");
                total += ctx.meta[2] as usize;
            }
            total
        };
        assert!(count(&mut small) < count(&mut large));
    }

    #[test]
    fn vectors_pass_through() {
        let mut c = Atomo::new(2.0, 4, 9);
        let g = gradient(21, 8);
        let (out, _, _) = roundtrip(&mut c, &g);
        assert_eq!(out.as_slice(), g.as_slice());
    }
}
