//! SketchML (Jiang et al., SIGMOD'18).

use grace_core::{Compressor, Context, FoldScratch, HomomorphicAggregate, Payload, PayloadList};
use grace_tensor::sketch::{bucket_of, GkSketch};
use grace_tensor::Tensor;

/// SketchML: sparsify to the non-zero elements, summarize their value
/// distribution with a Greenwald–Khanna quantile sketch, bucket each value
/// into equi-depth buckets, and transmit (bucket-index, element-index) pairs
/// plus the bucket boundaries. Values decode to their bucket's midpoint.
///
/// Bucket indices are bit-packed at `⌈log₂ buckets⌉` bits; the boundary list
/// (buckets + 1 scalars) rides in the context.
#[derive(Debug, Clone)]
pub struct SketchMl {
    buckets: usize,
    epsilon: f64,
}

impl SketchMl {
    /// Creates SketchML with `buckets` quantile buckets (paper default 64).
    ///
    /// # Panics
    ///
    /// Panics if `buckets < 2`.
    pub fn new(buckets: usize) -> Self {
        assert!(buckets >= 2, "need at least two buckets");
        SketchMl {
            buckets,
            epsilon: 0.01,
        }
    }

    /// The configured bucket count.
    pub fn buckets(&self) -> usize {
        self.buckets
    }

    fn bucket_bits(&self) -> u32 {
        usize::BITS - (self.buckets - 1).leading_zeros()
    }
}

impl Compressor for SketchMl {
    fn name(&self) -> String {
        format!("SketchML({})", self.buckets)
    }

    fn compress(&mut self, tensor: &Tensor, _name: &str) -> (Vec<Payload>, Context) {
        let (values, indices) = tensor.nonzero();
        // Build the quantile sketch over the non-zero values.
        let mut sketch = GkSketch::new(self.epsilon);
        sketch.extend_from_slice(&values);
        let boundaries = if values.is_empty() {
            vec![0.0; self.buckets + 1]
        } else {
            sketch.equi_depth_boundaries(self.buckets)
        };
        let codes: Vec<u32> = values
            .iter()
            .map(|&v| bucket_of(&boundaries, v) as u32)
            .collect();
        // SketchML also compresses the element indices ("hashing" in the
        // paper); sorted indices delta-encode into few bits per entry.
        let mut deltas = Vec::with_capacity(indices.len());
        let mut prev = 0u32;
        for (pos, &i) in indices.iter().enumerate() {
            deltas.push(if pos == 0 { i } else { i - prev });
            prev = i;
        }
        let delta_bits = deltas
            .iter()
            .map(|d| 32 - d.leading_zeros())
            .max()
            .unwrap_or(1)
            .max(1);
        let mut meta = boundaries;
        (
            vec![
                Payload::packed(&codes, self.bucket_bits()),
                Payload::packed(&deltas, delta_bits),
            ],
            Context::with_meta(tensor.shape().clone(), {
                meta.shrink_to_fit();
                meta
            }),
        )
    }

    fn decompress(&mut self, payloads: &[Payload], ctx: &Context) -> Tensor {
        let boundaries = &ctx.meta;
        let codes = payloads[0].unpack();
        let deltas = payloads[1].unpack();
        let mut out = Tensor::zeros(ctx.shape.clone());
        let mut index = 0u32;
        for (pos, code) in codes.into_iter().enumerate() {
            index = if pos == 0 {
                deltas[pos]
            } else {
                index + deltas[pos]
            };
            let b = code as usize;
            let mid = 0.5 * (boundaries[b] + boundaries[b + 1]);
            out[index as usize] = mid;
        }
        out
    }

    fn homomorphic(&mut self) -> Option<&mut dyn HomomorphicAggregate> {
        Some(self)
    }
}

impl HomomorphicAggregate for SketchMl {
    /// Linear scatter-add of the (bucket-midpoint, index) stream — the
    /// sketch decode is a sparse linear map, so summing scatters is exactly
    /// summing decoded tensors. Skipping untouched elements is exact:
    /// decoded zeros are `+0.0` (midpoints come from non-zero values, so a
    /// `-0.0` midpoint would need two `-0.0` boundaries, which
    /// `Tensor::nonzero` rules out) and the accumulator never holds `-0.0`.
    fn fold_encoded(
        &mut self,
        payloads: PayloadList<'_>,
        ctx: &Context,
        acc: &mut [f32],
        first: bool,
        scratch: &mut FoldScratch,
    ) {
        let boundaries = &ctx.meta;
        payloads.get(0).unpack_into(&mut scratch.codes);
        payloads.get(1).unpack_into(&mut scratch.aux);
        if first {
            acc.fill(0.0);
        }
        let mut index = 0u32;
        for (pos, &code) in scratch.codes.iter().enumerate() {
            index = if pos == 0 {
                scratch.aux[pos]
            } else {
                index + scratch.aux[pos]
            };
            let b = code as usize;
            let mid = 0.5 * (boundaries[b] + boundaries[b + 1]);
            if first {
                acc[index as usize] = mid;
            } else {
                acc[index as usize] += mid;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;

    #[test]
    fn bucket_bits() {
        assert_eq!(SketchMl::new(64).bucket_bits(), 6);
        assert_eq!(SketchMl::new(256).bucket_bits(), 8);
        assert_eq!(SketchMl::new(2).bucket_bits(), 1);
    }

    #[test]
    fn zeros_are_skipped_entirely() {
        let mut c = SketchMl::new(4);
        let g = Tensor::from_vec(vec![0.0, 1.0, 0.0, -1.0]);
        let (out, payloads, _) = roundtrip(&mut c, &g);
        assert_eq!(payloads[1].unpack(), vec![1, 2]); // delta-coded {1, 3}
        assert_eq!(out[0], 0.0);
        assert_eq!(out[2], 0.0);
    }

    #[test]
    fn reconstruction_error_is_within_bucket_width() {
        let mut c = SketchMl::new(64);
        let g = gradient(2000, 1);
        let (out, _, ctx) = roundtrip(&mut c, &g);
        // Every reconstructed value lies within its bucket, so the error is
        // at most the width of the widest bucket containing the value.
        let bounds = &ctx.meta;
        for i in 0..g.len() {
            if g[i] == 0.0 {
                continue;
            }
            let b = grace_tensor::sketch::bucket_of(bounds, g[i]);
            let width = (bounds[b + 1] - bounds[b]).abs() + 1e-5;
            assert!(
                (out[i] - g[i]).abs() <= width,
                "elem {i}: err {} > bucket width {width}",
                (out[i] - g[i]).abs()
            );
        }
    }

    #[test]
    fn volume_is_codes_plus_packed_indices_plus_boundaries() {
        let mut c = SketchMl::new(64);
        let g = gradient(1000, 2);
        let nz = g.norm0();
        let (_, payloads, ctx) = roundtrip(&mut c, &g);
        assert_eq!(payloads[0].encoded_bytes(), (nz * 6).div_ceil(8));
        // Delta-packed indices must beat the raw 4-byte-per-index encoding.
        assert!(payloads[1].encoded_bytes() < nz * 4);
        assert_eq!(ctx.meta_bytes(), 65 * 4);
    }

    #[test]
    fn empty_and_all_zero_inputs() {
        let mut c = SketchMl::new(8);
        let g = Tensor::from_vec(vec![0.0; 12]);
        let (out, _, _) = roundtrip(&mut c, &g);
        assert_eq!(out.norm_inf(), 0.0);
    }

    #[test]
    fn preserves_value_ordering_statistics() {
        // Equi-depth bucketing keeps the median roughly right.
        let mut c = SketchMl::new(32);
        let g = gradient(5000, 3);
        let (out, _, _) = roundtrip(&mut c, &g);
        let mut orig: Vec<f32> = g.as_slice().to_vec();
        let mut rec: Vec<f32> = out.as_slice().to_vec();
        orig.sort_by(|a, b| a.partial_cmp(b).unwrap());
        rec.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mid = orig.len() / 2;
        assert!(
            (orig[mid] - rec[mid]).abs() < 0.05,
            "median drifted: {} vs {}",
            orig[mid],
            rec[mid]
        );
    }

    #[test]
    #[should_panic(expected = "two buckets")]
    fn rejects_one_bucket() {
        let _ = SketchMl::new(1);
    }
}
