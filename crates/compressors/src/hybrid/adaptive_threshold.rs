//! Adaptive-threshold quantization (Dryden et al., MLHPC'16).

use grace_core::{Compressor, Context, Payload};
use grace_tensor::Tensor;

/// Adaptive-threshold SGD: instead of a fixed τ, a ratio `α < 1` fixes the
/// *proportion* of positive and negative elements kept each iteration. Two
/// thresholds `τ⁺`, `τ⁻` are derived per mini-batch; kept elements are
/// quantized to the mean of their group (the GRACE implementation sends just
/// the two means plus the selected index lists — §IV-C "Adaptive").
#[derive(Debug, Clone)]
pub struct AdaptiveThreshold {
    alpha: f64,
}

impl AdaptiveThreshold {
    /// Creates the compressor keeping an `alpha` fraction of each sign group
    /// (paper microbenchmarks use 0.01).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        AdaptiveThreshold { alpha }
    }

    /// The configured keep ratio.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

/// Selects the `⌈α·len⌉` largest-magnitude entries of one sign group and
/// returns (indices, mean value).
fn select_group(entries: &mut [(u32, f32)], alpha: f64) -> (Vec<u32>, f32) {
    if entries.is_empty() {
        return (Vec::new(), 0.0);
    }
    let keep = ((entries.len() as f64 * alpha).ceil() as usize).clamp(1, entries.len());
    entries.sort_by(|a, b| {
        b.1.abs()
            .partial_cmp(&a.1.abs())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let kept = &entries[..keep];
    let mean = kept.iter().map(|(_, v)| *v).sum::<f32>() / keep as f32;
    let mut idx: Vec<u32> = kept.iter().map(|(i, _)| *i).collect();
    idx.sort_unstable();
    (idx, mean)
}

impl Compressor for AdaptiveThreshold {
    fn name(&self) -> String {
        format!("Adaptive({})", self.alpha)
    }

    fn compress(&mut self, tensor: &Tensor, _name: &str) -> (Vec<Payload>, Context) {
        let mut pos: Vec<(u32, f32)> = Vec::new();
        let mut neg: Vec<(u32, f32)> = Vec::new();
        for (i, &v) in tensor.as_slice().iter().enumerate() {
            if v > 0.0 {
                pos.push((i as u32, v));
            } else if v < 0.0 {
                neg.push((i as u32, v));
            }
        }
        let (pos_idx, pos_mean) = select_group(&mut pos, self.alpha);
        let (neg_idx, neg_mean) = select_group(&mut neg, self.alpha);
        (
            vec![Payload::U32(pos_idx), Payload::U32(neg_idx)],
            Context::with_meta(tensor.shape().clone(), vec![pos_mean, neg_mean]),
        )
    }

    fn decompress(&mut self, payloads: &[Payload], ctx: &Context) -> Tensor {
        let (pos_mean, neg_mean) = (ctx.meta[0], ctx.meta[1]);
        let mut out = Tensor::zeros(ctx.shape.clone());
        for &i in payloads[0].as_u32() {
            out[i as usize] = pos_mean;
        }
        for &i in payloads[1].as_u32() {
            out[i as usize] = neg_mean;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;

    #[test]
    fn keeps_alpha_fraction_per_sign_group() {
        let mut c = AdaptiveThreshold::new(0.5);
        let g = Tensor::from_vec(vec![4.0, 1.0, 2.0, 3.0, -8.0, -1.0, -2.0, -4.0]);
        let (out, payloads, ctx) = roundtrip(&mut c, &g);
        // Positive group keeps {4.0, 3.0} -> mean 3.5 at indices 0, 3.
        assert_eq!(payloads[0].as_u32(), &[0, 3]);
        assert_eq!(ctx.meta[0], 3.5);
        // Negative group keeps {-8.0, -4.0} -> mean -6.0 at indices 4, 7.
        assert_eq!(payloads[1].as_u32(), &[4, 7]);
        assert_eq!(ctx.meta[1], -6.0);
        assert_eq!(out[0], 3.5);
        assert_eq!(out[4], -6.0);
        assert_eq!(out[1], 0.0);
    }

    #[test]
    fn handles_single_signed_inputs() {
        let mut c = AdaptiveThreshold::new(0.5);
        let g = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0]);
        let (out, _, ctx) = roundtrip(&mut c, &g);
        assert_eq!(ctx.meta[1], 0.0, "empty negative group mean is 0");
        assert!(out.norm0() == 2);
    }

    #[test]
    fn zero_tensor_sends_nothing() {
        let mut c = AdaptiveThreshold::new(0.1);
        let g = Tensor::from_vec(vec![0.0; 10]);
        let (out, payloads, _) = roundtrip(&mut c, &g);
        assert_eq!(out.norm_inf(), 0.0);
        assert_eq!(payloads[0].encoded_bytes() + payloads[1].encoded_bytes(), 0);
    }

    #[test]
    fn volume_scales_with_alpha() {
        let mut tight = AdaptiveThreshold::new(0.01);
        let mut loose = AdaptiveThreshold::new(0.5);
        let g = gradient(2000, 1);
        let (pt, _) = tight.compress(&g, "w");
        let (pl, _) = loose.compress(&g, "w");
        let bt: usize = pt.iter().map(|p| p.encoded_bytes()).sum();
        let bl: usize = pl.iter().map(|p| p.encoded_bytes()).sum();
        assert!(bt * 10 < bl, "alpha=0.01 ({bt}B) vs alpha=0.5 ({bl}B)");
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_bad_alpha() {
        let _ = AdaptiveThreshold::new(0.0);
    }
}
