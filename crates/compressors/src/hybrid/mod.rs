//! Hybrid methods (paper §III-C): quantization combined with sparsification.

mod adaptive_threshold;
mod sketch_ml;

pub use adaptive_threshold::AdaptiveThreshold;
pub use sketch_ml::SketchMl;
