//! Umbrella crate for the GRACE reproduction: re-exports every subsystem.
//!
//! See the individual crates for details:
//! - [`tensor`] — dense tensor substrate
//! - [`nn`] — from-scratch deep-learning library
//! - [`comm`] — collective communication + network cost model
//! - [`core`] — the GRACE framework (compressor API, error feedback, Algorithm 1)
//! - [`compressors`] — the 16 compression methods of Table I
//! - [`telemetry`] — tracing, metrics histograms, Perfetto timeline export
//! - [`analyze`] — trace critical-path attribution + bench regression checks

pub use grace_analyze as analyze;
pub use grace_comm as comm;
pub use grace_compressors as compressors;
pub use grace_core as core;
pub use grace_nn as nn;
pub use grace_telemetry as telemetry;
pub use grace_tensor as tensor;
