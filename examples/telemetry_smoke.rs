//! End-to-end telemetry smoke check: run a tiny training job with tracing
//! enabled, export the Perfetto trace + metrics snapshot, re-parse both, and
//! assert the timeline has what DESIGN.md §10 promises — one track per worker
//! lane and at least one span on every exchange-stage track. CI runs this as
//! its telemetry gate; it exits non-zero on any violation.
//!
//! Run: `GRACE_TELEMETRY=trace cargo run --example telemetry_smoke`
//! (the example force-enables tracing via `TrainConfig::telemetry`, so the
//! env var is optional here — it is how real runs opt in).

use grace::compressors::registry;
use grace::core::trainer::run_simulated;
use grace::core::TrainConfig;
use grace::nn::data::ClassificationDataset;
use grace::nn::models;
use grace::nn::optim::Momentum;
use grace::telemetry::json::{self, Value};
use grace::telemetry::Level;

const WORKERS: usize = 4;

fn main() {
    let task = ClassificationDataset::synthetic(128, 32, 10, 0.35, 5);
    let mut net = models::mlp_classifier("m", 32, &[24], 10, 5);
    let mut cfg = TrainConfig::new(WORKERS, 16, 1, 5);
    cfg.telemetry = Some(Level::Trace);

    // Top-k is an allgather method, so one step exercises every stage track:
    // per-lane compress (with its enclosing bucket span), per-peer
    // decompress, and the aggregate averaging pass.
    let spec = registry::find("topk").expect("registered");
    let (mut cs, mut ms) = registry::build_fleet(&spec, WORKERS, 5);
    let mut opt = Momentum::new(0.03, 0.9);
    let result = run_simulated(&cfg, &mut net, &task, &mut opt, &mut cs, &mut ms);
    println!(
        "trained: {} steps, accuracy {:.3}",
        result.steps, result.best_quality
    );

    // Config-derived run id: re-running the same config overwrites the same
    // files, so exports never depend on wall-clock time.
    let paths =
        grace::telemetry::export::export_run(&cfg.run_tag("telemetry_smoke")).expect("export");
    println!("trace:   {}", paths.trace.display());
    println!("metrics: {}", paths.metrics.display());

    // --- Re-parse the trace and check the Perfetto contract. ---
    let text = std::fs::read_to_string(&paths.trace).expect("read trace");
    let doc = json::parse(&text).expect("trace is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");

    let mut tracks = Vec::new();
    let mut span_counts: std::collections::BTreeMap<String, usize> = Default::default();
    for ev in events {
        match ev.get("ph").and_then(Value::as_str) {
            Some("M") => {
                if let Some(name) = ev
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Value::as_str)
                {
                    tracks.push(name.to_string());
                }
            }
            Some("X") => {
                if let Some(name) = ev.get("name").and_then(Value::as_str) {
                    *span_counts.entry(name.to_string()).or_default() += 1;
                }
            }
            _ => {}
        }
    }

    for rank in 0..WORKERS {
        let lane = format!("lane {rank}");
        assert!(
            tracks.contains(&lane),
            "missing track {lane:?} in {tracks:?}"
        );
    }
    assert!(
        tracks.contains(&"buckets".to_string()),
        "missing pipelined-exchange 'buckets' track in {tracks:?}"
    );
    for stage in ["compress", "bucket", "decompress", "aggregate"] {
        let n = span_counts.get(stage).copied().unwrap_or(0);
        assert!(
            n >= 1,
            "no '{stage}' spans in trace (spans: {span_counts:?})"
        );
        println!("stage '{stage}': {n} spans");
    }

    // --- The metrics JSONL must carry latency tails for each stage. ---
    let metrics_text = std::fs::read_to_string(&paths.metrics).expect("read metrics");
    for name in [
        "exchange.compress_ns",
        "exchange.decompress_ns",
        "exchange.aggregate_ns",
    ] {
        let line = metrics_text
            .lines()
            .find(|l| l.contains(name))
            .unwrap_or_else(|| panic!("metric {name} missing from JSONL"));
        let v = json::parse(line).expect("metrics line is valid JSON");
        for q in ["p50", "p95", "p99"] {
            assert!(v.get(q).is_some(), "{name} lacks {q}");
        }
    }
    println!("telemetry smoke: OK");
}
