//! The recommendation scenario the paper highlights (§V-B, Fig. 6d): the
//! NCF analog is communication-bound (a large embedding table, trivial
//! compute), so compression buys real throughput — but aggressive
//! compression costs hit-rate quality. This example trains the analog with
//! the baseline, Top-k and QSGD and prints the quality/throughput/volume
//! trade-off.
//!
//! Run: `cargo run --release --example recommendation`

use grace::compressors::registry;
use grace::core::trainer::run_simulated;
use grace::core::{Compressor, Memory, NoCompression, NoMemory, TrainConfig};
use grace::nn::data::{RecommendationDataset, Task};
use grace::nn::models;
use grace::nn::optim::Adam;

type Fleet = (Vec<Box<dyn Compressor>>, Vec<Box<dyn Memory>>);

fn main() {
    let task = RecommendationDataset::synthetic(48, 200, 4, 4, 40, 9);
    println!(
        "NCF analog: {} users x {} items, {} training interactions\n",
        task.n_users(),
        task.n_items(),
        task.train_len()
    );

    let mut rows: Vec<(String, f64, f64, f64)> = Vec::new();
    let methods: Vec<Option<&str>> = vec![None, Some("topk"), Some("qsgd"), Some("randomk")];
    for id in methods {
        let mut net = models::ncf_analog(task.vocab(), 16, 9);
        let cfg = TrainConfig::new(8, 64, 6, 9);
        let mut opt = Adam::new(0.01);
        let (mut cs, mut ms): Fleet = match id {
            None => (
                (0..8)
                    .map(|_| Box::new(NoCompression::new()) as Box<dyn Compressor>)
                    .collect(),
                (0..8)
                    .map(|_| Box::new(NoMemory::new()) as Box<dyn Memory>)
                    .collect(),
            ),
            Some(id) => {
                let spec = registry::find(id).expect("registered");
                registry::build_fleet(&spec, 8, 9)
            }
        };
        let res = run_simulated(&cfg, &mut net, &task, &mut opt, &mut cs, &mut ms);
        rows.push((
            res.compressor.clone(),
            res.best_quality,
            res.throughput,
            res.bytes_per_worker_per_iter,
        ));
    }

    let base_tput = rows[0].2;
    println!(
        "{:<14} {:>10} {:>12} {:>14}",
        "Method", "HitRate@10", "Rel. tput", "Bytes/iter"
    );
    for (name, hr, tput, vol) in &rows {
        println!(
            "{name:<14} {hr:>10.4} {:>12.2} {vol:>14.0}",
            tput / base_tput
        );
    }
    println!(
        "\nThe embedding-dominated model is communication-bound: sparsifiers \
         trade a little hit-rate for large speedups (paper Fig. 6d)."
    );
}
