//! Live-monitoring smoke check: run a traced + health-monitored training job
//! with the metrics endpoint enabled (`TrainConfig::metrics_addr`), scrape it
//! **while the run is in flight**, and assert the exposition carries the
//! series a dashboard needs — wire traffic, pipeline overlap, and the health
//! gauges. Afterwards the trace is exported under a config-derived run tag
//! so CI can hand it to `grace-analyze` for critical-path attribution.
//!
//! Run: `cargo run --example monitoring_smoke`
//! (CI runs this as the `monitoring` gate; it exits non-zero on violation.)

use grace::compressors::registry;
use grace::core::trainer::run_simulated;
use grace::core::{HealthConfig, TrainConfig};
use grace::nn::data::ClassificationDataset;
use grace::nn::models;
use grace::nn::optim::Momentum;
use grace::telemetry::serve::{self, parse_exposition, Sample};
use grace::telemetry::{json, Level};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

const WORKERS: usize = 4;
const EPOCHS: usize = 24;
const SCRAPE_DEADLINE: Duration = Duration::from_secs(30);

/// The series a run-health dashboard is built on. `traffic.bytes_total`
/// proves the collective layer is metered, `exchange.overlap_ratio` that the
/// pipelined exchange reports hiding, and the `health.*` gauges that the
/// anomaly monitor is live.
const REQUIRED: [&str; 6] = [
    "traffic_bytes_total",
    "traffic_messages_total",
    "exchange_overlap_ratio",
    "health_grad_norm",
    "health_grad_norm_ewma",
    "health_tripped",
];

fn value(samples: &[Sample], name: &str) -> f64 {
    samples
        .iter()
        .find(|s| s.name == name && s.labels.is_empty())
        .unwrap_or_else(|| panic!("series {name} missing from exposition"))
        .value
}

fn main() {
    // Reserve a port for the trainer-owned endpoint: bind an ephemeral
    // listener, note its address, release it. The trainer re-binds it via
    // `metrics_addr` a moment later.
    let addr: SocketAddr = {
        let probe = std::net::TcpListener::bind("127.0.0.1:0").expect("probe bind");
        probe.local_addr().expect("probe addr")
    };

    let mut cfg = TrainConfig::new(WORKERS, 16, EPOCHS, 5);
    cfg.telemetry = Some(Level::Trace);
    cfg.metrics_addr = Some(addr.to_string());
    cfg.health = Some(HealthConfig::default());
    // The smoke model is tiny; a small fusion threshold keeps the exchange
    // multi-bucket so the pipeline actually has overlap to report.
    cfg.fusion_bytes = 1024;
    let tag = cfg.run_tag("monitoring_smoke");

    let trainer = std::thread::spawn(move || {
        let task = ClassificationDataset::synthetic(128, 32, 10, 0.35, 5);
        let mut net = models::mlp_classifier("m", 32, &[24], 10, 5);
        let spec = registry::find("topk").expect("registered");
        let (mut cs, mut ms) = registry::build_fleet(&spec, WORKERS, 5);
        let mut opt = Momentum::new(0.03, 0.9);
        run_simulated(&cfg, &mut net, &task, &mut opt, &mut cs, &mut ms)
    });

    // Scrape the live endpoint until every dashboard series has appeared.
    // The endpoint only exists while the run does, so this loop *is* the
    // mid-run check.
    let started = Instant::now();
    let body = loop {
        assert!(
            started.elapsed() < SCRAPE_DEADLINE,
            "metrics endpoint on {addr} never served all of {REQUIRED:?}"
        );
        if let Ok(text) = serve::scrape(addr, "/metrics") {
            if let Ok(samples) = parse_exposition(&text) {
                // Presence is not enough: the registry pre-registers
                // counters at 0 during setup, so a fast scrape can win the
                // race against step 1. Wait until traffic has flowed.
                let have = |n: &str| samples.iter().any(|s| s.name == n);
                let flowing = |n: &str| samples.iter().any(|s| s.name == n && s.value > 0.0);
                if REQUIRED.iter().all(|n| have(n))
                    && flowing("traffic_bytes_total")
                    && flowing("traffic_messages_total")
                {
                    break text;
                }
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    let health_body = serve::scrape(addr, "/health").unwrap_or_default();
    println!(
        "scraped live endpoint at {addr} after {:?}",
        started.elapsed()
    );

    let result = trainer.join().expect("training thread panicked");
    println!(
        "trained: {} steps, accuracy {:.3}",
        result.steps, result.best_quality
    );

    // --- The mid-run exposition must be dashboard-ready. ---
    let samples = parse_exposition(&body).expect("exposition parses");
    assert!(
        value(&samples, "traffic_bytes_total") > 0.0,
        "no traffic metered"
    );
    assert!(value(&samples, "traffic_messages_total") > 0.0);
    let overlap = value(&samples, "exchange_overlap_ratio");
    assert!(
        (0.0..=1.0).contains(&overlap),
        "overlap_ratio {overlap} outside [0, 1]"
    );
    // The mid-run gauge may still read its initial 0 on the very first
    // step; by end of run the pipelined exchange must have hidden work.
    let final_overlap = grace::telemetry::metrics::gauge("exchange.overlap_ratio").get();
    assert!(
        final_overlap > 0.0,
        "pipelined exchange reported no overlap ({final_overlap})"
    );
    assert!(value(&samples, "health_grad_norm").is_finite());
    assert_eq!(
        value(&samples, "health_tripped"),
        0.0,
        "clean smoke run must not trip the monitor"
    );
    for name in REQUIRED {
        println!("  {name} = {}", value(&samples, name));
    }
    if !health_body.is_empty() {
        let doc = json::parse(&health_body).expect("health JSON parses");
        assert_eq!(doc.get("status").and_then(|s| s.as_str()), Some("ok"));
        println!("  /health status = ok");
    }

    // --- Export under the config-derived tag for grace-analyze. ---
    let paths = grace::telemetry::export::export_run(&tag).expect("export");
    println!("trace:   {}", paths.trace.display());
    println!("metrics: {}", paths.metrics.display());

    // The trace must carry step markers: that is what grace-analyze windows
    // its critical-path attribution on.
    let text = std::fs::read_to_string(&paths.trace).expect("read trace");
    let steps = text.matches("\"steps\"").count();
    assert!(steps > 0, "trace lacks the step-marker track");
    println!("monitoring smoke: OK ({} steps traced)", result.steps);
}
