//! Per-tensor compression inspection: for one trained model, how many bytes
//! does each method spend on each gradient tensor, and at what
//! reconstruction error? This is the analysis practitioners run before
//! picking a method for *their* model (paper §I "investigate the
//! trade-offs").
//!
//! Run: `cargo run --release --example inspect_model`

use grace::compressors::registry;
use grace::core::payload::total_bytes;
use grace::nn::data::{ClassificationDataset, Task};
use grace::nn::models;

fn main() {
    // A short warm-up so the gradients are post-initialisation realistic.
    let ds = ClassificationDataset::synthetic(256, 32, 4, 0.35, 3);
    let mut net = models::resnet20_analog(32, 4, 3);
    let mut opt = grace::nn::optim::Momentum::new(0.05, 0.9);
    for step in 0..20 {
        let idx: Vec<usize> = (0..16).map(|i| (step * 16 + i) % ds.train_len()).collect();
        let (x, y) = ds.train_batch(&idx);
        let _ = net.forward_backward(&x, &y);
        let grads = net.take_gradients();
        net.apply_gradients(&grads, &mut opt);
    }
    let grads = net.take_gradients();
    println!(
        "ResNet-20 analog: {} gradient tensors, {} parameters\n",
        grads.len(),
        net.param_count()
    );

    // Aggregate per method over all tensors.
    println!(
        "{:<16} {:>12} {:>8} {:>12}",
        "Method", "Bytes/iter", "×vol", "Rel. L2 err"
    );
    for spec in registry::all_specs() {
        let mut c = (spec.build)(7);
        let mut bytes = 0usize;
        let mut err_sq = 0.0f64;
        let mut norm_sq = 0.0f64;
        for (name, g) in &grads {
            let (payloads, ctx) = c.compress(g, name);
            bytes += total_bytes(&payloads) + ctx.meta_bytes();
            let out = c.decompress(&payloads, &ctx);
            let e = out.sub(g).norm2();
            let n = g.norm2();
            err_sq += f64::from(e) * f64::from(e);
            norm_sq += f64::from(n) * f64::from(n);
        }
        let raw = 4 * grads.iter().map(|(_, g)| g.len()).sum::<usize>();
        println!(
            "{:<16} {:>12} {:>8.1} {:>12.4}",
            spec.display,
            bytes,
            raw as f64 / bytes as f64,
            (err_sq / norm_sq.max(1e-30)).sqrt()
        );
    }
    println!(
        "\nReading: sign methods give 32x volume at ~1.0 relative error \
         (direction only); sparsifiers give ~50x at moderate error; the \
         trade-off is method- and tensor-dependent."
    );
}
