//! The practitioner question the paper closes on: *given my network, should
//! I compress at all — and with what?* This example sweeps link bandwidth
//! (1 / 10 / 25 Gbps, as in the paper's testbed) for the communication-heavy
//! VGG16 analog and prints which methods beat the no-compression baseline at
//! each speed — reproducing the §V-F takeaway that "at higher bandwidths,
//! avoiding compression typically results in faster training".
//!
//! Run: `cargo run --release --example bandwidth_sweep`

use grace::comm::{FaultConfig, FaultPlan, FaultRates, NetworkModel, Transport};
use grace::compressors::registry;
use grace::compressors::TopK;
use grace::core::threaded::run_threaded;
use grace::core::trainer::run_simulated;
use grace::core::{Compressor, Memory, NoCompression, NoMemory, ResidualMemory, TrainConfig};
use grace::nn::data::ClassificationDataset;
use grace::nn::models;
use grace::nn::optim::{Momentum, Optimizer};
use std::time::Duration;

type Fleet = (Vec<Box<dyn Compressor>>, Vec<Box<dyn Memory>>);

fn throughput(gbps: f64, compressor_id: Option<&str>) -> f64 {
    let task = ClassificationDataset::synthetic(512, 64, 10, 0.35, 3);
    let mut net = models::vgg16_analog(64, 10, 3);
    let mut cfg = TrainConfig::new(8, 32, 2, 3);
    cfg.network = NetworkModel::new(gbps, Transport::Tcp);
    // Paper-scale clock, as in the experiment harness (DESIGN.md §6):
    // paper compute time, paper-sized bytes, calibrated codec model.
    cfg.compute = grace::core::ComputeModel::new(1.2e-3);
    cfg.byte_scale = 14_982_987.0 / net.param_count() as f64;
    cfg.codec = match compressor_id {
        None => grace::core::trainer::CodecTiming::Free,
        Some(id) => {
            let spec = registry::find(id).expect("registered");
            grace::core::trainer::CodecTiming::Modeled {
                per_op_seconds: 1.0e-4,
                ops_per_tensor: spec.ops_per_tensor,
                ns_per_element: spec.ns_per_element,
                tensor_count: 30,
            }
        }
    };
    let mut opt = Momentum::new(0.03, 0.9);
    let (mut cs, mut ms): Fleet = match compressor_id {
        None => (
            (0..8)
                .map(|_| Box::new(NoCompression::new()) as Box<dyn Compressor>)
                .collect(),
            (0..8)
                .map(|_| Box::new(NoMemory::new()) as Box<dyn Memory>)
                .collect(),
        ),
        Some(id) => {
            let spec = registry::find(id).expect("registered");
            registry::build_fleet(&spec, 8, 3)
        }
    };
    run_simulated(&cfg, &mut net, &task, &mut opt, &mut cs, &mut ms).throughput
}

fn main() {
    let methods: [(&str, Option<&str>); 4] = [
        ("Baseline", None),
        ("Topk(0.01)", Some("topk")),
        ("QSGD(64)", Some("qsgd")),
        ("8-bit", Some("eightbit")),
    ];
    println!("VGG16 analog, 8 workers — throughput (images/s) vs link speed:\n");
    println!(
        "{:<12} {:>12} {:>12} {:>12}",
        "Method", "1 Gbps", "10 Gbps", "25 Gbps"
    );
    let mut base = [0.0f64; 3];
    for (row, (label, id)) in methods.iter().enumerate() {
        let mut cells = Vec::new();
        for (col, gbps) in [1.0, 10.0, 25.0].into_iter().enumerate() {
            let t = throughput(gbps, *id);
            if row == 0 {
                base[col] = t;
            }
            cells.push(format!("{t:>8.0} ({:>4.2}x)", t / base[col]));
        }
        println!("{label:<12} {}", cells.join(" "));
    }
    println!(
        "\nReading: at 1 Gbps the sparsifier wins 6x; dense quantizers stay \
         near the baseline because Allgather ships every worker's payload \
         (n-1) times (paper §IV-B). As bandwidth grows, codec overhead \
         erodes even Top-k's win (paper Fig. 10 vs Fig. 6c)."
    );

    straggler_rerun();

    // With GRACE_TELEMETRY=metrics|trace set, drop the run's Perfetto trace
    // and metrics snapshot under results/telemetry/ (no-op otherwise). The
    // label is config-derived (see `TrainConfig::run_tag`) so repeated runs
    // of the same sweep land on stable, wall-clock-free file names.
    if grace::telemetry::enabled(grace::telemetry::Level::Metrics) {
        let tag = TrainConfig::new(8, 32, 2, 3).run_tag("bandwidth_sweep");
        let paths = grace::telemetry::export::export_run(&tag).expect("write telemetry export");
        println!("\n[telemetry] trace:   {}", paths.trace.display());
        println!("[telemetry] metrics: {}", paths.metrics.display());
    }
}

/// Reruns the Top-k point in the *real* threaded SPMD mode under a seeded
/// straggler plan: 5% of collective ops stall up to 2 ms. Stragglers cost
/// wall-clock but reorder nothing, so the fault counters are populated while
/// the trained model stays exactly the model a fault-free run produces.
fn straggler_rerun() {
    let n = 8;
    let task = ClassificationDataset::synthetic(256, 64, 10, 0.35, 3);
    let mut cfg = TrainConfig::new(n, 16, 2, 3);
    cfg.codec = grace::core::trainer::CodecTiming::Free;
    let make_worker = |_rank: usize| {
        (
            models::mlp_classifier("m", 64, &[48], 10, 3),
            Box::new(Momentum::new(0.03, 0.9)) as Box<dyn Optimizer>,
            Box::new(TopK::new(0.01)) as Box<dyn Compressor>,
            Box::new(ResidualMemory::new()) as Box<dyn Memory>,
        )
    };
    let clean = run_threaded(&cfg, &task, make_worker);

    let rates = FaultRates {
        straggler: 0.05,
        drop: 0.0,
        corrupt: 0.0,
        max_delay: Duration::from_millis(2),
    };
    cfg.fault = Some(FaultConfig {
        plan: FaultPlan::seeded(3, n, 240, &rates),
        timeout: Some(Duration::from_secs(30)),
    });
    let delayed = run_threaded(&cfg, &task, make_worker);

    println!(
        "\nStraggler plan (seed 3): {} delays injected across {} workers; \
         survivors {}; accuracy {:.3} (fault-free {:.3})",
        delayed.faults.injected_stragglers.iter().sum::<u64>(),
        n,
        delayed.survivors,
        delayed.final_quality,
        clean.final_quality,
    );
    assert_eq!(
        clean.final_quality, delayed.final_quality,
        "stragglers must not change the trained model"
    );
}
