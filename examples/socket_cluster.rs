//! Running the distributed loop over **real sockets**: the same training
//! code as `threaded_cluster.rs`, but every collective crosses a localhost
//! TCP connection through the rendezvous hub (and, on Unix, a second pass
//! over Unix-domain sockets). The trained model must match the threaded
//! cluster bit for bit — the transport is invisible to the math.
//!
//! Run: `cargo run --release --example socket_cluster`

use grace::compressors::TopK;
use grace::core::process::run_cluster;
use grace::core::threaded::run_threaded;
use grace::core::trainer::CodecTiming;
use grace::core::{param_checksum, Compressor, ExecBackend, Memory, ResidualMemory, TrainConfig};
use grace::nn::data::ClassificationDataset;
use grace::nn::models;
use grace::nn::optim::{Momentum, Optimizer};

fn main() {
    let n_workers = 4;
    let task = ClassificationDataset::synthetic(512, 16, 4, 0.35, 99);
    let mut cfg = TrainConfig::new(n_workers, 16, 4, 99);
    cfg.codec = CodecTiming::Free;

    let make_worker = |rank: usize| {
        // Every worker builds an identical replica from the same seed; only
        // its data shard (by rank) differs.
        let net = models::resnet20_analog(16, 4, 99);
        let opt: Box<dyn Optimizer> = Box::new(Momentum::new(0.05, 0.9));
        let compressor: Box<dyn Compressor> = Box::new(TopK::new(0.05));
        let memory: Box<dyn Memory> = Box::new(ResidualMemory::new());
        let _ = rank; // the schedule derives shard + batches from the rank
        (net, opt, compressor, memory)
    };

    println!("Training the ResNet-20 analog with Topk(0.05) over localhost TCP …");
    cfg.backend = ExecBackend::SocketTcp;
    let tcp = run_cluster(&cfg, &task, make_worker);
    let tcp_crc = param_checksum(&tcp.final_params);
    println!(
        "tcp sockets:   accuracy {:.4}, params crc32 {tcp_crc:08x}, {} bytes from rank 0",
        tcp.final_quality, tcp.bytes_sent
    );

    println!("Reference run on the in-process threaded cluster …");
    let threaded = run_threaded(&cfg, &task, make_worker);
    let threaded_crc = param_checksum(&threaded.final_params);
    println!(
        "threads:       accuracy {:.4}, params crc32 {threaded_crc:08x}",
        threaded.final_quality
    );
    assert_eq!(
        tcp_crc, threaded_crc,
        "socket and threaded backends must train identical bits"
    );

    #[cfg(unix)]
    {
        println!("Once more over Unix-domain sockets …");
        cfg.backend = ExecBackend::SocketUds;
        let uds = run_cluster(&cfg, &task, make_worker);
        let uds_crc = param_checksum(&uds.final_params);
        println!(
            "unix sockets:  accuracy {:.4}, params crc32 {uds_crc:08x}",
            uds.final_quality
        );
        assert_eq!(uds_crc, threaded_crc, "UDS fast path must agree too");
    }

    println!("bit-identical results across every transport: true");
}
