//! Implementing a **new** compression method against the GRACE API — the
//! paper's "researchers… easily implement novel methods using our API and
//! evaluate them on a standard testbed" use case (§I).
//!
//! The method below ("MeanTop") keeps the top-k magnitudes but transmits only
//! their shared mean (one scalar + indices + a sign bitmap), then is dropped
//! unmodified into the full distributed training loop next to Top-k.
//!
//! Run: `cargo run --release --example custom_compressor`

use grace::comm::NetworkModel;
use grace::compressors::TopK;
use grace::core::trainer::run_simulated;
use grace::core::{
    CommStrategy, Compressor, Context, Memory, Payload, ResidualMemory, TrainConfig,
};
use grace::nn::data::{ClassificationDataset, Task};
use grace::nn::models;
use grace::nn::optim::Momentum;
use grace::tensor::pack::{pack_signs, unpack_signs};
use grace::tensor::select::top_k_indices;
use grace::tensor::Tensor;

/// Top-k selection + 1-bit magnitude quantization: indices, signs and one
/// mean scalar per tensor.
struct MeanTop {
    ratio: f64,
}

impl Compressor for MeanTop {
    fn name(&self) -> String {
        format!("MeanTop({})", self.ratio)
    }

    fn strategy(&self) -> CommStrategy {
        CommStrategy::Allgather
    }

    fn compress(&mut self, tensor: &Tensor, _name: &str) -> (Vec<Payload>, Context) {
        let k = ((tensor.len() as f64 * self.ratio).ceil() as usize).max(1);
        let indices = top_k_indices(tensor.as_slice(), k);
        let values: Vec<f32> = indices.iter().map(|&i| tensor[i as usize]).collect();
        let mean = values.iter().map(|v| v.abs()).sum::<f32>() / values.len() as f32;
        let signs: Vec<bool> = values.iter().map(|&v| v < 0.0).collect();
        (
            vec![
                Payload::U32(indices),
                Payload::Packed {
                    data: pack_signs(&signs),
                    bits: 1,
                    count: signs.len() as u32,
                },
            ],
            Context::with_meta(tensor.shape().clone(), vec![mean]),
        )
    }

    fn decompress(&mut self, payloads: &[Payload], ctx: &Context) -> Tensor {
        let mean = ctx.meta[0];
        let indices = payloads[0].as_u32();
        let signs = match &payloads[1] {
            Payload::Packed { data, count, .. } => unpack_signs(data, *count as usize),
            _ => unreachable!("wire format fixed above"),
        };
        let mut out = Tensor::zeros(ctx.shape.clone());
        for (&i, neg) in indices.iter().zip(signs) {
            out[i as usize] = if neg { -mean } else { mean };
        }
        out
    }
}

fn train_with(label: &str, task: &dyn Task, make: impl Fn() -> Box<dyn Compressor>) -> (f64, f64) {
    let mut net = models::resnet20_analog(32, 4, 5);
    let mut cfg = TrainConfig::new(4, 16, 8, 5);
    cfg.network = NetworkModel::paper_default();
    let mut opt = Momentum::new(0.05, 0.9);
    let mut cs: Vec<Box<dyn Compressor>> = (0..4).map(|_| make()).collect();
    let mut ms: Vec<Box<dyn Memory>> = (0..4)
        .map(|_| Box::new(ResidualMemory::new()) as Box<dyn Memory>)
        .collect();
    let res = run_simulated(&cfg, &mut net, task, &mut opt, &mut cs, &mut ms);
    println!(
        "{label:<16} accuracy {:.4}  volume/iter {:>9.0} B  ({:.0}x compression)",
        res.best_quality,
        res.bytes_per_worker_per_iter,
        res.compression_ratio()
    );
    (res.best_quality, res.bytes_per_worker_per_iter)
}

fn main() {
    let task = ClassificationDataset::synthetic(640, 32, 4, 0.35, 5);
    println!("Custom method vs Top-k on the ResNet-20 analog, 4 workers:\n");
    let (_, topk_vol) = train_with("Topk(0.01)", &task, || Box::new(TopK::new(0.01)));
    let (_, mean_vol) = train_with("MeanTop(0.01)", &task, || Box::new(MeanTop { ratio: 0.01 }));
    println!(
        "\nMeanTop transmits {:.1}% of Top-k's bytes by replacing float values \
         with one mean + sign bits.",
        100.0 * mean_vol / topk_vol
    );
}
