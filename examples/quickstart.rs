//! Quickstart: compress a gradient tensor, inspect the payload, and run a
//! few error-feedback iterations — the core GRACE API in 60 lines.
//!
//! Run: `cargo run --example quickstart`

use grace::compressors::{Qsgd, TopK};
use grace::core::payload::total_bytes;
use grace::core::{Compressor, Memory, ResidualMemory};
use grace::tensor::Tensor;

fn main() {
    // A fake layer gradient: 10k elements, mostly small values.
    let grad: Tensor = (0..10_000)
        .map(|i| {
            let x = (i as f32 * 0.37).sin();
            0.01 * x * x * x
        })
        .collect();
    println!(
        "gradient: {} elements = {} bytes raw",
        grad.len(),
        grad.len() * 4
    );

    // --- Top-k sparsification: keep the 1% largest-magnitude elements ---
    let mut topk = TopK::new(0.01);
    let (payloads, ctx) = topk.compress(&grad, "layer0/w");
    let bytes = total_bytes(&payloads) + ctx.meta_bytes();
    println!(
        "{}: {} bytes on the wire ({:.1}x smaller)",
        topk.name(),
        bytes,
        (grad.len() * 4) as f64 / bytes as f64
    );
    let restored = topk.decompress(&payloads, &ctx);
    println!(
        "  reconstruction keeps {} non-zeros, relative error {:.3}",
        restored.norm0(),
        restored.sub(&grad).norm2() / grad.norm2()
    );

    // --- QSGD quantization: every element survives at ~8 bits ---
    let mut qsgd = Qsgd::new(64, 7);
    let (payloads, ctx) = qsgd.compress(&grad, "layer0/w");
    let bytes = total_bytes(&payloads) + ctx.meta_bytes();
    println!(
        "{}: {} bytes on the wire ({:.1}x smaller)",
        qsgd.name(),
        bytes,
        (grad.len() * 4) as f64 / bytes as f64
    );

    // --- Error feedback: the residual of each iteration is re-injected ---
    // With a 25% keep-ratio, four iterations rotate through every
    // coordinate: the cumulative transmitted mass converges to the cumulative
    // true gradient — nothing is permanently lost.
    let mut rotating = TopK::new(0.25);
    let mut memory = ResidualMemory::new();
    let mut total_sent = grad.zeros_like();
    let iters = 8;
    for iter in 0..iters {
        let compensated = memory.compensate("layer0/w", &grad);
        let (payloads, ctx) = rotating.compress(&compensated, "layer0/w");
        let decompressed = rotating.decompress(&payloads, &ctx);
        memory.update("layer0/w", &compensated, &decompressed);
        total_sent.add_assign(&decompressed);
        let residual = memory.residual("layer0/w").expect("stored").norm1();
        println!("iter {iter}: residual mass {residual:.5}");
    }
    let mut ideal = grad.clone();
    ideal.scale(iters as f32);
    println!(
        "after {iters} iterations at 25% sparsity: sent/ideal mass = {:.3}",
        total_sent.norm1() / ideal.norm1()
    );
}
