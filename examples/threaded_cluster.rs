//! Running the distributed loop on **real concurrent workers**: one OS
//! thread per worker exchanging compressed gradients through the collective
//! layer — the execution mode that validates the deterministic simulator.
//!
//! Run: `cargo run --release --example threaded_cluster`

use grace::compressors::TopK;
use grace::core::threaded::run_threaded;
use grace::core::trainer::{run_simulated, CodecTiming};
use grace::core::{Compressor, Memory, ResidualMemory, TrainConfig};
use grace::nn::data::ClassificationDataset;
use grace::nn::models;
use grace::nn::optim::{Momentum, Optimizer};

fn main() {
    let n_workers = 4;
    let task = ClassificationDataset::synthetic(512, 16, 4, 0.35, 99);
    let mut cfg = TrainConfig::new(n_workers, 16, 4, 99);
    cfg.codec = CodecTiming::Free;

    println!("Training the ResNet-20 analog with Topk(0.05) on {n_workers} real threads …");
    let threaded = run_threaded(&cfg, &task, |rank| {
        // Every worker builds an identical replica from the same seed; only
        // its data shard (by rank) differs.
        let net = models::resnet20_analog(16, 4, 99);
        let opt: Box<dyn Optimizer> = Box::new(Momentum::new(0.05, 0.9));
        let compressor: Box<dyn Compressor> = Box::new(TopK::new(0.05));
        let memory: Box<dyn Memory> = Box::new(ResidualMemory::new());
        let _ = rank; // the schedule derives shard + batches from the rank
        (net, opt, compressor, memory)
    });
    println!(
        "threaded run:  accuracy {:.4}, {} compressed bytes sent by rank 0",
        threaded.final_quality, threaded.bytes_sent
    );

    // The deterministic simulator replays the identical schedule…
    let mut net = models::resnet20_analog(16, 4, 99);
    let mut opt = Momentum::new(0.05, 0.9);
    let mut cs: Vec<Box<dyn Compressor>> = (0..n_workers)
        .map(|_| Box::new(TopK::new(0.05)) as Box<dyn Compressor>)
        .collect();
    let mut ms: Vec<Box<dyn Memory>> = (0..n_workers)
        .map(|_| Box::new(ResidualMemory::new()) as Box<dyn Memory>)
        .collect();
    let sim = run_simulated(&cfg, &mut net, &task, &mut opt, &mut cs, &mut ms);
    println!("simulated run: accuracy {:.4}", sim.final_quality);

    // …and produces the same model, bit for bit.
    let same = sim.final_quality == threaded.final_quality;
    println!("bit-identical results: {same}");
    assert!(same, "the two execution modes must agree");
}
