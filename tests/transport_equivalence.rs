//! Cross-backend bit-equivalence: the deterministic simulator, the threaded
//! deposit board, and the real socket transport must train the *same bits*.
//!
//! This is the transport PR's centerpiece harness. The training loop is
//! backend-independent, so for every registered compression method (plus
//! the extension set), every executor width and every fusion threshold, the
//! final parameter vector — digested to a CRC32 by
//! [`grace::core::param_checksum`] — must be identical whether the
//! collectives run over shared memory, crossbeam-style threads, localhost
//! TCP, or Unix-domain sockets. A handful of golden checksums are pinned so
//! a cross-backend *consistent* regression (all backends drifting together)
//! is caught too.

use grace::compressors::{extensions, registry};
use grace::core::process::run_cluster;
use grace::core::trainer::{run_simulated, CodecTiming};
use grace::core::{param_checksum, Compressor, ExecBackend, Memory, TrainConfig};
use grace::nn::data::ClassificationDataset;
use grace::nn::models;
use grace::nn::network::Network;
use grace::nn::optim::{Momentum, Optimizer};
use grace::tensor::Tensor;

const N: usize = 3;
const SEED: u64 = 31;

fn task() -> ClassificationDataset {
    ClassificationDataset::synthetic(96, 8, 2, 0.3, SEED)
}

fn config(backend: ExecBackend) -> TrainConfig {
    let mut cfg = TrainConfig::new(N, 8, 2, SEED);
    cfg.codec = CodecTiming::Free;
    cfg.backend = backend;
    cfg
}

type Worker = (
    Network,
    Box<dyn Optimizer>,
    Box<dyn Compressor>,
    Box<dyn Memory>,
);

fn worker_for(spec: &grace::core::CompressorSpec, rank: usize) -> Worker {
    let (mut cs, mut ms) = registry::build_fleet(spec, N, SEED);
    (
        models::mlp_classifier("m", 8, &[12], 2, SEED),
        Box::new(Momentum::new(0.05, 0.9)) as Box<dyn Optimizer>,
        cs.swap_remove(rank),
        ms.swap_remove(rank),
    )
}

fn run_backend(spec: &grace::core::CompressorSpec, cfg: &TrainConfig) -> (u32, f64) {
    let result = run_cluster(cfg, &task(), |rank| worker_for(spec, rank));
    assert_eq!(result.survivors, N);
    (param_checksum(&result.final_params), result.final_quality)
}

fn run_sim(spec: &grace::core::CompressorSpec, cfg: &TrainConfig) -> (u32, f64) {
    let t = task();
    let mut network = models::mlp_classifier("m", 8, &[12], 2, SEED);
    let mut optimizer: Box<dyn Optimizer> = Box::new(Momentum::new(0.05, 0.9));
    let (mut cs, mut ms) = registry::build_fleet(spec, N, SEED);
    let res = run_simulated(cfg, &mut network, &t, optimizer.as_mut(), &mut cs, &mut ms);
    (param_checksum(&network.export_params()), res.final_quality)
}

/// Every registered method and every extension trains bit-identically over
/// the threaded board and over real TCP sockets.
#[test]
fn every_method_is_bit_identical_threaded_vs_socket() {
    let mut specs = registry::all_specs();
    specs.extend(extensions::extension_specs());
    assert!(specs.len() >= 16, "registry shrank below the paper's table");
    for spec in &specs {
        let (threaded_crc, threaded_q) = run_backend(spec, &config(ExecBackend::Threads));
        let (socket_crc, socket_q) = run_backend(spec, &config(ExecBackend::SocketTcp));
        assert_eq!(
            threaded_crc, socket_crc,
            "'{}' diverged between threads and sockets",
            spec.id
        );
        assert_eq!(threaded_q, socket_q, "'{}' quality diverged", spec.id);
    }
}

/// The three-way check (simulated ↔ threaded ↔ socket ↔ unix-socket) on a
/// representative trio covering allgather (TopK), randomized quantization
/// (QSGD, per-worker seeds) and low-rank allreduce (PowerSGD) — swept over
/// executor widths and fusion thresholds, which must never change bits.
#[test]
fn widths_and_fusion_thresholds_never_change_bits() {
    for id in ["topk", "qsgd", "powersgd"] {
        let spec = registry::find(id).unwrap();
        let mut reference: Option<u32> = None;
        for width in [None, Some(1)] {
            for fusion in [1usize, grace::core::DEFAULT_FUSION_BYTES] {
                let mut backends = vec![ExecBackend::Threads, ExecBackend::SocketTcp];
                if cfg!(unix) {
                    backends.push(ExecBackend::SocketUds);
                }
                for backend in backends {
                    let mut cfg = config(backend);
                    cfg.exchange_threads = width;
                    cfg.fusion_bytes = fusion;
                    let (crc, _) = run_backend(&spec, &cfg);
                    match reference {
                        None => {
                            // The deterministic simulator anchors the cell.
                            let mut sim_cfg = config(ExecBackend::Threads);
                            sim_cfg.exchange_threads = width;
                            sim_cfg.fusion_bytes = fusion;
                            let (sim_crc, _) = run_sim(&spec, &sim_cfg);
                            assert_eq!(
                                sim_crc, crc,
                                "'{id}' diverged from the simulator (width {width:?}, fusion {fusion})"
                            );
                            reference = Some(crc);
                        }
                        Some(r) => assert_eq!(
                            r, crc,
                            "'{id}' diverged at width {width:?}, fusion {fusion}, {backend:?}"
                        ),
                    }
                }
            }
        }
    }
}

/// Pinned golden checksums: catches the failure mode equivalence alone
/// cannot — every backend drifting together (a change to the schedule, the
/// RNG derivation, or the aggregation order). Bump these deliberately when
/// the training pipeline is *meant* to change bits.
#[test]
fn golden_checksums_are_stable() {
    let golden: [(&str, u32); 3] = [
        ("topk", 0x055c95df),
        ("qsgd", 0x05208a6e),
        ("powersgd", 0x10763297),
    ];
    for (id, expected) in golden {
        let spec = registry::find(id).unwrap();
        let (crc, _) = run_backend(&spec, &config(ExecBackend::Threads));
        assert_eq!(
            crc, expected,
            "golden checksum for '{id}' moved: got {crc:08x} — if the \
             training pipeline changed intentionally, re-pin"
        );
    }
}

/// Aggregation plans move *where* the merge happens — never *what* it
/// computes. For a representative cell of the method space (shared-scale
/// quantizer, sketch, selection-only, low-rank allreduce), every plan on
/// every backend must reproduce the reference `decode_then_merge` bits,
/// through the simulator and both socket transports alike.
#[test]
fn aggregation_plans_never_change_bits_on_any_backend() {
    use grace::core::AggregationPlan;

    for id in ["eightbit", "sketchml", "topk", "powersgd"] {
        let spec = registry::find(id)
            .or_else(|| {
                extensions::extension_specs()
                    .into_iter()
                    .find(|s| s.id == id)
            })
            .unwrap();
        let reference = {
            let (crc, _) = run_sim(&spec, &config(ExecBackend::Threads));
            crc
        };
        for plan in AggregationPlan::ALL {
            let mut sim_cfg = config(ExecBackend::Threads);
            sim_cfg.agg_plan = plan;
            let (sim_crc, _) = run_sim(&spec, &sim_cfg);
            assert_eq!(sim_crc, reference, "'{id}' simulator drifted under {plan}");

            let mut backends = vec![ExecBackend::Threads, ExecBackend::SocketTcp];
            if cfg!(unix) {
                backends.push(ExecBackend::SocketUds);
            }
            for backend in backends {
                let mut cfg = config(backend);
                cfg.agg_plan = plan;
                let (crc, _) = run_backend(&spec, &cfg);
                assert_eq!(crc, reference, "'{id}' drifted under {plan} on {backend:?}");
            }
        }
    }
}

/// Pinned goldens for the homomorphic shared-scale path specifically: the
/// codebook-space fold must keep producing the exact trained bits it
/// produced when the capability shipped, so a silent change to the shared
/// decode expression cannot hide behind self-consistent equivalence.
#[test]
fn homomorphic_shared_scale_goldens_are_stable() {
    use grace::core::AggregationPlan;

    let golden: [(&str, u32); 2] = [
        ("eightbit", GOLDEN_EIGHTBIT_HOM),
        ("lpcsvrg", GOLDEN_LPCSVRG_HOM),
    ];
    for (id, expected) in golden {
        let spec = registry::find(id)
            .or_else(|| {
                extensions::extension_specs()
                    .into_iter()
                    .find(|s| s.id == id)
            })
            .unwrap();
        let mut cfg = config(ExecBackend::Threads);
        cfg.agg_plan = AggregationPlan::HomomorphicSum;
        let (crc, _) = run_backend(&spec, &cfg);
        assert_eq!(
            crc, expected,
            "homomorphic golden for '{id}' moved: got {crc:08x} — re-pin only \
             if the fold expression changed deliberately"
        );
    }
}

const GOLDEN_EIGHTBIT_HOM: u32 = 0x4720_18d4;
const GOLDEN_LPCSVRG_HOM: u32 = 0x067e_7bc1;

/// Shuffled submission orders: stragglers make ranks submit to the hub at
/// scrambled wall-clock times; the socket hub (like the deposit board) must
/// aggregate in rank order regardless, leaving the bits untouched.
#[test]
fn scrambled_submission_timing_is_bit_transparent_on_sockets() {
    use grace::comm::{FaultConfig, FaultPlan};
    use std::time::Duration;

    let spec = registry::find("topk").unwrap();
    let (clean_crc, clean_q) = run_backend(&spec, &config(ExecBackend::SocketTcp));
    let plan = FaultPlan::empty()
        .with_straggler(0, 2, Duration::from_millis(3))
        .with_straggler(2, 5, Duration::from_millis(2))
        .with_straggler(1, 9, Duration::from_millis(1));
    let mut cfg = config(ExecBackend::SocketTcp);
    cfg.fault = Some(FaultConfig {
        plan,
        timeout: Some(Duration::from_secs(30)),
    });
    let delayed = run_cluster(&cfg, &task(), |rank| worker_for(&spec, rank));
    assert_eq!(delayed.survivors, N);
    assert_eq!(delayed.faults.injected_stragglers, vec![1, 1, 1]);
    assert_eq!(param_checksum(&delayed.final_params), clean_crc);
    assert_eq!(delayed.final_quality, clean_q);
}

/// The checksum digest itself must be order- and name-sensitive, or the
/// golden comparisons above prove nothing.
#[test]
fn param_checksum_distinguishes_real_differences() {
    let a = vec![
        ("w0".to_string(), Tensor::from_vec(vec![1.0, 2.0])),
        ("w1".to_string(), Tensor::from_vec(vec![3.0])),
    ];
    let mut swapped = a.clone();
    swapped.swap(0, 1);
    assert_ne!(param_checksum(&a), param_checksum(&swapped));
    let mut perturbed = a.clone();
    perturbed[0].1 = Tensor::from_vec(vec![1.0 + f32::EPSILON, 2.0]);
    assert_ne!(param_checksum(&a), param_checksum(&perturbed));
    assert_eq!(param_checksum(&a), param_checksum(&a.clone()));
}
