//! Compressor conformance suite.
//!
//! Every method in the registry — the paper's 16 plus the extensions — must
//! satisfy the API contract the trainer and the threaded runtime rely on:
//!
//! 1. `decompress(compress(g))` preserves the gradient's shape and yields
//!    finite values;
//! 2. a second compress/decompress round-trip (through a fresh same-seed
//!    instance) is well-formed, and for methods whose output lies on their
//!    own quantization/selection grid it is a fixed point;
//! 3. two fresh instances built from the same seed are bit-reproducible —
//!    the property that lets threaded replicas agree with the simulator;
//! 4. each method's payload list survives the checksummed wire codec
//!    (`encode` → `decode_checked`) byte-exactly, including the trailing
//!    meta payload the threaded mode ships.
//!
//! Gradients are drawn from a seeded proptest strategy, so failures replay
//! deterministically.

use grace::compressors::extensions::extension_specs;
use grace::compressors::registry;
use grace::core::payload::{decode_checked, encode, Payload};
use grace::core::CompressorSpec;
use grace::tensor::Tensor;
use proptest::prelude::*;

/// The paper's 16 registry methods plus the extension methods.
fn conformance_specs() -> Vec<CompressorSpec> {
    let mut specs = registry::all_specs();
    specs.extend(extension_specs());
    specs
}

/// Methods whose decompressed output is a fixed point of its own
/// compression: the reconstruction already lies on the method's
/// quantization grid / support set, so a fresh same-seed second round-trip
/// must reproduce it (within float round-off).
const IDEMPOTENT: &[&str] = &[
    "signsgd",
    "efsignsgd",
    "topk",
    "randomk",
    "eightbit",
    "terngrad",
    "inceptionn",
];

fn gradient() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-10.0f32..10.0, 4..160)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn round_trip_preserves_shape_and_finiteness_for_every_method(
        data in gradient(),
        seed in 0u64..500,
    ) {
        let g = Tensor::from_vec(data);
        for spec in conformance_specs() {
            let mut c = (spec.build)(seed);
            let (payloads, ctx) = c.compress(&g, "layer/w");
            let d1 = c.decompress(&payloads, &ctx);
            prop_assert_eq!(d1.shape(), g.shape(), "{}: shape", spec.id);
            prop_assert!(d1.is_finite(), "{}: first round non-finite", spec.id);

            // Second round-trip through a fresh same-seed instance.
            let mut c2 = (spec.build)(seed);
            let (p2, ctx2) = c2.compress(&d1, "layer/w");
            let d2 = c2.decompress(&p2, &ctx2);
            prop_assert_eq!(d2.shape(), g.shape(), "{}: shape (round 2)", spec.id);
            prop_assert!(d2.is_finite(), "{}: second round non-finite", spec.id);

            if IDEMPOTENT.contains(&spec.id) {
                let err = d2.sub(&d1).norm_inf();
                prop_assert!(
                    err <= 1e-4,
                    "{}: second round-trip not a fixed point (err {})",
                    spec.id,
                    err
                );
            }
        }
    }

    #[test]
    fn same_seed_fresh_instances_are_bit_reproducible(
        data in gradient(),
        seed in 0u64..500,
    ) {
        let g = Tensor::from_vec(data);
        for spec in conformance_specs() {
            let mut a = (spec.build)(seed);
            let mut b = (spec.build)(seed);
            let (pa, ctx_a) = a.compress(&g, "layer/w");
            let (pb, ctx_b) = b.compress(&g, "layer/w");
            prop_assert_eq!(&pa, &pb, "{}: payloads diverged", spec.id);
            prop_assert_eq!(&ctx_a.meta, &ctx_b.meta, "{}: meta diverged", spec.id);
            let da = a.decompress(&pa, &ctx_a);
            let db = b.decompress(&pb, &ctx_b);
            prop_assert_eq!(
                da.as_slice(),
                db.as_slice(),
                "{}: decompressed bits diverged",
                spec.id
            );
        }
    }

    #[test]
    fn every_methods_payloads_survive_the_checksummed_wire_codec(
        data in gradient(),
        seed in 0u64..500,
    ) {
        let g = Tensor::from_vec(data);
        for spec in conformance_specs() {
            let mut c = (spec.build)(seed);
            let (payloads, ctx) = c.compress(&g, "layer/w");
            // The threaded runtime appends the context scalars as a final
            // F32 payload; conform to the exact on-wire shape.
            let mut wire = payloads;
            wire.push(Payload::F32(ctx.meta.clone()));
            let decoded = decode_checked(&encode(&wire));
            prop_assert!(decoded.is_ok(), "{}: {:?}", spec.id, decoded.err());
            prop_assert_eq!(decoded.unwrap(), wire, "{}: wire round-trip", spec.id);
        }
    }
}
