//! Property-based tests spanning crates: invariants that must hold for
//! arbitrary gradients, payloads and configurations.

use grace::compressors::registry;
use grace::core::payload::{decode, encode, total_bytes, Payload};
use grace::core::trainer::mean_payloads;
use grace::core::{Compressor, Context};
use grace::tensor::pack::{pack_bits, unpack_bits};
use grace::tensor::select::{desparsify, sparsify, top_k_indices};
use grace::tensor::{Shape, Tensor};
use proptest::prelude::*;

fn small_gradient() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-10.0f32..10.0, 1..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_compressor_preserves_shape_and_finiteness(
        data in small_gradient(),
        seed in 0u64..1000,
    ) {
        let g = Tensor::from_vec(data);
        for spec in registry::all_specs() {
            let mut c = (spec.build)(seed);
            let (payloads, ctx) = c.compress(&g, "p/w");
            let out = c.decompress(&payloads, &ctx);
            prop_assert_eq!(out.shape(), g.shape(), "{}", spec.id);
            prop_assert!(out.is_finite(), "{}: non-finite", spec.id);
            // Wire accounting is consistent: encode() length bounds the
            // logical payload bytes (framing only adds).
            let encoded = encode(&payloads);
            prop_assert!(encoded.len() >= total_bytes(&payloads), "{}", spec.id);
        }
    }

    #[test]
    fn payload_codec_roundtrips(
        f32s in proptest::collection::vec(-1e6f32..1e6, 0..50),
        u32s in proptest::collection::vec(0u32..u32::MAX, 0..50),
        bytes in proptest::collection::vec(0u8..255, 0..50),
        words in proptest::collection::vec(0u32..128, 0..50),
    ) {
        let list = vec![
            Payload::F32(f32s),
            Payload::U32(u32s),
            Payload::Bytes(bytes),
            Payload::packed(&words, 7),
        ];
        prop_assert_eq!(decode(&encode(&list)), list);
    }

    #[test]
    fn bitpack_roundtrips_any_width(
        bits in 1u32..=32,
        count in 0usize..100,
        seed in 0u64..10_000,
    ) {
        let mask = if bits == 32 { u32::MAX } else { (1u32 << bits) - 1 };
        let values: Vec<u32> = (0..count)
            .map(|i| (seed.wrapping_mul(i as u64 + 1) as u32) & mask)
            .collect();
        prop_assert_eq!(unpack_bits(&pack_bits(&values, bits), bits, count), values);
    }

    #[test]
    fn sparsify_roundtrip_preserves_selected_and_zeros_rest(
        data in small_gradient(),
        k_frac in 0.0f64..1.0,
    ) {
        let g = Tensor::from_vec(data);
        let k = ((g.len() as f64 * k_frac) as usize).min(g.len());
        let idx = top_k_indices(g.as_slice(), k);
        let sel = sparsify(&g, idx.clone());
        let dense = desparsify(&sel);
        for (i, v) in dense.as_slice().iter().enumerate() {
            if idx.contains(&(i as u32)) {
                prop_assert_eq!(*v, g[i]);
            } else {
                prop_assert_eq!(*v, 0.0);
            }
        }
    }

    #[test]
    fn topk_reconstruction_never_increases_error_with_larger_k(
        data in proptest::collection::vec(-10.0f32..10.0, 4..100),
    ) {
        use grace::compressors::TopK;
        let g = Tensor::from_vec(data);
        let err = |ratio: f64| {
            let mut c = TopK::new(ratio);
            let (p, ctx) = c.compress(&g, "w");
            c.decompress(&p, &ctx).sub(&g).norm2()
        };
        let coarse = err(0.25);
        let fine = err(0.75);
        prop_assert!(fine <= coarse + 1e-4, "fine {fine} > coarse {coarse}");
    }

    #[test]
    fn mean_payloads_is_elementwise_average(
        a in proptest::collection::vec(-100.0f32..100.0, 1..40),
        scale in -3.0f32..3.0,
    ) {
        let b: Vec<f32> = a.iter().map(|v| v * scale).collect();
        let ctx = Context::shape_only(Shape::vector(a.len()));
        let per_worker = vec![
            (vec![Payload::F32(a.clone())], ctx.clone()),
            (vec![Payload::F32(b.clone())], ctx),
        ];
        let mean = mean_payloads(&per_worker);
        let m = mean[0].as_f32();
        for i in 0..a.len() {
            let expect = (a[i] + b[i]) / 2.0;
            prop_assert!((m[i] - expect).abs() <= expect.abs() * 1e-5 + 1e-5);
        }
    }

    #[test]
    fn quantizer_error_bounded_by_norm(
        data in proptest::collection::vec(-5.0f32..5.0, 1..150),
        seed in 0u64..100,
    ) {
        // Unbiased quantizers satisfy E‖x−Q(x)‖² ≤ Ω‖x‖² (§III); a single
        // draw must at least stay within a loose deterministic envelope.
        let g = Tensor::from_vec(data);
        for id in ["qsgd", "terngrad", "natural", "eightbit"] {
            let spec = registry::find(id).unwrap();
            let mut c = (spec.build)(seed);
            let (p, ctx) = c.compress(&g, "w");
            let out = c.decompress(&p, &ctx);
            let err = out.sub(&g).norm2();
            let bound = match id {
                // TernGrad's variance scales with √d·‖g‖∞.
                "terngrad" => g.norm_inf() * (g.len() as f32).sqrt() + 1e-6,
                _ => 1.5 * g.norm2() + 1e-6,
            };
            prop_assert!(err <= bound, "{id}: err {err} > bound {bound}");
        }
    }

    #[test]
    fn error_feedback_conserves_mass(
        data in proptest::collection::vec(-1.0f32..1.0, 8..100),
    ) {
        use grace::compressors::TopK;
        use grace::core::{Memory, ResidualMemory};
        // Invariant: decompressed + residual == compensated, exactly.
        let g = Tensor::from_vec(data);
        let mut c = TopK::new(0.1);
        let mut mem = ResidualMemory::new();
        for _ in 0..3 {
            let comp = mem.compensate("w", &g);
            let (p, ctx) = c.compress(&comp, "w");
            let dec = c.decompress(&p, &ctx);
            mem.update("w", &comp, &dec);
            let residual = mem.residual("w").unwrap();
            let recon = dec.add(residual);
            prop_assert!(recon.sub(&comp).norm_inf() < 1e-6);
        }
    }
}
