//! The cross-rank trace-merge pipeline, end to end in one process: clock
//! offsets estimated from simulated exchanges, per-rank export files that
//! round-trip through the merge parser without losing a span, and a
//! four-rank merged document that obeys the minimal Perfetto schema with
//! one process lane per rank.
//!
//! This binary owns the global telemetry level (tests take a serial lock),
//! so it must not share a process with other telemetry tests.

use grace::analyze::merge;
use grace::comm::{ClockEstimator, ClockSample};
use grace::telemetry::json::{self, Value};
use grace::telemetry::trace::{self, StageTimer};
use grace::telemetry::{set_level, set_trace_header, Level, TraceHeader, Track};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

fn serial() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("grace_trace_merge_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// A simulated four-timestamp exchange against a hub whose epoch is
/// `offset` ns ahead, with asymmetric delays.
fn sample(t0: u64, offset: i64, up: u64, hold: u64, down: u64) -> ClockSample {
    let h1 = (t0 as i128 + up as i128 + offset as i128) as u64;
    let h2 = h1 + hold;
    ClockSample {
        t0,
        h1,
        h2,
        t3: (h2 as i128 - offset as i128 + down as i128) as u64,
    }
}

/// The estimator the rendezvous ping burst feeds is deterministic: the
/// same simulated exchanges always produce the same (offset, rtt), the
/// min-RTT sample wins regardless of fold order, and symmetric delay
/// recovers the planted offset exactly.
#[test]
fn clock_offset_estimation_is_deterministic_under_simulated_clock() {
    let offset = 7_654_321i64;
    let exchanges = [
        sample(1_000, offset, 500_000, 2_000, 40_000), // asymmetric, slow
        sample(2_000_000, offset, 30_000, 1_000, 30_000), // clean
        sample(4_000_000, offset, 45_000, 0, 700_000), // asymmetric, slow
    ];
    let mut forward = ClockEstimator::new();
    for s in exchanges {
        forward.fold(s);
    }
    let mut reverse = ClockEstimator::new();
    for s in exchanges.iter().rev() {
        reverse.fold(*s);
    }
    assert_eq!(forward.estimate(), reverse.estimate());
    let (got, rtt) = forward.estimate().expect("three samples folded");
    assert_eq!(got, offset, "symmetric min-RTT sample recovers the offset");
    assert_eq!(rtt, 60_000);
    assert_eq!(forward.samples(), 3);
}

/// Emits one rank's worth of events and exports them as
/// `<dir>/rank<k>.trace.json` with the given clock offset in the header.
/// Returns the (name, dur_ns) of every span emitted.
fn export_rank(dir: &std::path::Path, rank: usize, world: usize, offset_ns: i64) -> Vec<String> {
    let mut span_names = Vec::new();
    for step in 0..2u64 {
        let timer = StageTimer::start();
        std::hint::black_box(());
        timer.finish_with2(
            "net.roundtrip",
            Track::Net(rank),
            ("step", step),
            ("op", step + 1),
        );
        span_names.push("net.roundtrip".to_string());
        trace::instant_arg("step", Track::Step, Some(("step", step)));
    }
    set_trace_header(Some(TraceHeader {
        rank: Some(rank),
        world,
        clock_offset_ns: offset_ns,
        clock_rtt_ns: 9_000,
    }));
    grace::telemetry::export::export_run_to(dir, &format!("rank{rank}"))
        .expect("export rank trace");
    let _ = trace::take_events();
    span_names
}

/// A per-rank export file parses back with every span intact: same count,
/// same names, same track, timestamps preserved to export precision.
#[test]
fn rank_file_round_trips_preserving_every_span() {
    let _g = serial();
    let dir = fresh_dir("roundtrip");
    set_level(Level::Trace);
    trace::clear();
    let spans = export_rank(&dir, 3, 4, -2_500_000);
    set_level(Level::Off);

    let text = std::fs::read_to_string(dir.join("rank3.trace.json")).unwrap();
    let parsed = merge::parse_rank_trace(&text).expect("parse rank export");
    assert_eq!(parsed.rank, Some(3));
    assert_eq!(parsed.world, 4);
    assert_eq!(parsed.clock_offset_ns, -2_500_000);
    assert_eq!(parsed.clock_rtt_ns, 9_000);

    let parsed_spans: Vec<&merge::RawEvent> =
        parsed.events.iter().filter(|e| e.ph == "X").collect();
    assert_eq!(parsed_spans.len(), spans.len(), "a span went missing");
    for span in &parsed_spans {
        assert_eq!(span.name, "net.roundtrip");
        assert!(span.dur_us >= 0.0);
    }
    // Both steps' args survived the round trip.
    let steps: BTreeSet<u64> = parsed_spans
        .iter()
        .filter_map(|e| {
            e.args.iter().find_map(|(k, v)| match v {
                merge::ArgVal::Num(n) if k == "step" => Some(*n as u64),
                _ => None,
            })
        })
        .collect();
    assert_eq!(steps, BTreeSet::from([0, 1]));
    // Instants survive too (2 step markers), and the rebase applies the
    // negative header offset.
    let instants = parsed.events.iter().filter(|e| e.ph == "i").count();
    assert_eq!(instants, 2);
    let raw = parsed_spans[0].ts_us;
    assert!((parsed.rebase_us(raw) - (raw - 2_500.0)).abs() < 1e-9);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Four rank files merge into one document that passes the minimal
/// Perfetto schema check: every event carries pid/tid, spans have ts+dur,
/// instants are scoped, each rank owns a distinct pid with a
/// `process_name`, and the step report sees both steps as complete.
#[test]
fn four_rank_merged_trace_passes_perfetto_schema_check() {
    let _g = serial();
    let dir = fresh_dir("merge4");
    set_level(Level::Trace);
    trace::clear();
    for rank in 0..4 {
        export_rank(&dir, rank, 4, rank as i64 * 1_000_000);
    }
    set_level(Level::Off);

    let traces = merge::load_dir(&dir).expect("load rank files");
    assert_eq!(traces.len(), 4);
    let merged = merge::merged_trace_json(&traces);
    std::fs::write(dir.join("merged.trace.json"), &merged).unwrap();

    let doc = json::parse(&merged).expect("merged trace is valid JSON");
    assert!(doc.get("displayTimeUnit").is_some());
    let list = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    let mut pids = BTreeSet::new();
    let mut process_names = Vec::new();
    for ev in list {
        let ph = ev.get("ph").and_then(Value::as_str).expect("ph");
        let pid = ev.get("pid").and_then(Value::as_f64).expect("pid") as u64;
        assert!(ev.get("tid").is_some(), "tid missing on {ph}");
        pids.insert(pid);
        match ph {
            "M" => {
                let name = ev.get("name").and_then(Value::as_str).unwrap();
                if name == "process_name" {
                    let label = ev
                        .get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Value::as_str)
                        .expect("process_name args.name");
                    process_names.push(label.to_string());
                }
            }
            "X" => {
                assert!(ev.get("ts").and_then(Value::as_f64).is_some(), "ts");
                assert!(ev.get("dur").and_then(Value::as_f64).is_some(), "dur");
            }
            "i" => {
                assert_eq!(ev.get("s").and_then(Value::as_str), Some("t"));
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    // One process lane per rank (pids 2..=5 — pid 1 is reserved for the
    // hub, absent from this synthetic run).
    assert_eq!(pids, BTreeSet::from([2, 3, 4, 5]));
    assert_eq!(process_names, vec!["rank 0", "rank 1", "rank 2", "rank 3"]);

    let report = merge::analyze(&traces);
    assert_eq!(report.ranks, 4);
    assert!(!report.has_hub);
    assert_eq!(report.complete_steps, vec![0, 1]);
    assert_eq!(report.convoys.len(), 2);
    assert_eq!(report.worst_rtt_ns, 9_000);
    let _ = std::fs::remove_dir_all(&dir);
}
