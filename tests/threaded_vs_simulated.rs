//! The deterministic simulator and the real multi-threaded SPMD runtime must
//! produce bit-identical models for every communication strategy.

use grace::compressors::{PowerSgd, Qsgd, TopK};
use grace::core::threaded::run_threaded;
use grace::core::trainer::{run_simulated, CodecTiming};
use grace::core::{Compressor, Memory, NoMemory, ResidualMemory, TrainConfig};
use grace::nn::data::{ClassificationDataset, Task};
use grace::nn::models;
use grace::nn::network::Network;
use grace::nn::optim::{Momentum, Optimizer};
use grace::tensor::Tensor;

fn config(n: usize) -> TrainConfig {
    let mut cfg = TrainConfig::new(n, 8, 2, 31);
    cfg.codec = CodecTiming::Free;
    cfg
}

fn net() -> Network {
    models::mlp_classifier("m", 8, &[12], 2, 31)
}

fn opt() -> Box<dyn Optimizer> {
    Box::new(Momentum::new(0.05, 0.9))
}

fn simulate(
    task: &ClassificationDataset,
    n: usize,
    make_c: impl Fn(usize) -> Box<dyn Compressor>,
    make_m: impl Fn() -> Box<dyn Memory>,
) -> (f64, Vec<(String, Tensor)>) {
    let cfg = config(n);
    let mut network = net();
    let mut optimizer = opt();
    let mut cs: Vec<Box<dyn Compressor>> = (0..n).map(&make_c).collect();
    let mut ms: Vec<Box<dyn Memory>> = (0..n).map(|_| make_m()).collect();
    let res = run_simulated(
        &cfg,
        &mut network,
        task,
        optimizer.as_mut(),
        &mut cs,
        &mut ms,
    );
    (res.final_quality, network.export_params())
}

fn check_equivalence(
    make_c: impl Fn(usize) -> Box<dyn Compressor> + Sync + Copy,
    make_m: impl Fn() -> Box<dyn Memory> + Sync + Copy,
) {
    let n = 3;
    let task = ClassificationDataset::synthetic(96, 8, 2, 0.3, 31);
    let (sim_q, sim_params) = simulate(&task, n, |w| make_c(w), make_m);
    let threaded = run_threaded(&config(n), &task, |rank| {
        (net(), opt(), make_c(rank), make_m())
    });
    assert_eq!(threaded.final_quality, sim_q, "quality diverged");
    assert_eq!(sim_params.len(), threaded.final_params.len());
    for ((na, ta), (nb, tb)) in sim_params.iter().zip(threaded.final_params.iter()) {
        assert_eq!(na, nb);
        assert_eq!(ta.as_slice(), tb.as_slice(), "replica diverged at {na}");
    }
}

#[test]
fn topk_allgather_matches() {
    check_equivalence(
        |_w| Box::new(TopK::new(0.05)),
        || Box::new(ResidualMemory::new()),
    );
}

#[test]
fn qsgd_randomized_matches_with_per_worker_seeds() {
    // Randomized compressors agree across modes because worker `rank` uses
    // the same derived seed in both.
    check_equivalence(
        |w| Box::new(Qsgd::new(16, 1000 + w as u64)),
        || Box::new(NoMemory::new()),
    );
}

#[test]
fn powersgd_allreduce_matches() {
    check_equivalence(
        |_w| Box::new(PowerSgd::new(2)),
        || Box::new(ResidualMemory::new()),
    );
}

#[test]
fn empty_fault_plan_is_bit_transparent() {
    // Satellite acceptance: wrapping every worker in a FaultyCollective
    // with an empty plan must change nothing — final parameters stay
    // bit-identical to both the unwrapped threaded run and the simulator.
    use grace::comm::{FaultConfig, FaultPlan};
    use std::time::Duration;

    let n = 3;
    let task = ClassificationDataset::synthetic(96, 8, 2, 0.3, 31);
    let make = |_rank: usize| {
        (
            net(),
            opt(),
            Box::new(TopK::new(0.05)) as Box<dyn Compressor>,
            Box::new(ResidualMemory::new()) as Box<dyn Memory>,
        )
    };
    let (sim_q, sim_params) = simulate(
        &task,
        n,
        |_w| Box::new(TopK::new(0.05)),
        || Box::new(ResidualMemory::new()),
    );
    let plain = run_threaded(&config(n), &task, make);
    let mut cfg = config(n);
    cfg.fault = Some(FaultConfig {
        plan: FaultPlan::empty(),
        timeout: Some(Duration::from_secs(30)),
    });
    let wrapped = run_threaded(&cfg, &task, make);

    assert_eq!(wrapped.final_quality, sim_q);
    assert_eq!(wrapped.final_quality, plain.final_quality);
    assert_eq!(wrapped.survivors, n);
    assert_eq!(wrapped.faults.total_injected(), 0);
    assert_eq!(wrapped.faults.detected_corruptions, vec![0; n]);
    for (((na, ta), (nb, tb)), (nc, tc)) in sim_params
        .iter()
        .zip(plain.final_params.iter())
        .zip(wrapped.final_params.iter())
    {
        assert_eq!(na, nb);
        assert_eq!(na, nc);
        assert_eq!(ta.as_slice(), tb.as_slice(), "plain run diverged at {na}");
        assert_eq!(ta.as_slice(), tc.as_slice(), "wrapped run diverged at {na}");
    }
}

#[test]
fn traffic_counter_totals_equal_shipped_wire_bytes_exactly() {
    // Satellite acceptance: TrafficCounter::total_bytes() equals the sum of
    // the wire bytes of every payload actually shipped — byte-exact, both
    // for allgathered codec frames and the ring all-reduce formula.
    use grace::comm::{ring_allreduce_wire_bytes, Collective, ThreadedCluster};
    use grace::core::payload::{encode, Payload};

    let n = 3;
    let rounds = 5;
    let per_worker = ThreadedCluster::run(n, |c| {
        let mut compressor = TopK::new(0.25);
        let mut expected = 0u64;
        for round in 0..rounds {
            // A deterministic per-(rank, round) gradient; no RNG needed.
            let g = Tensor::from_vec(
                (0..64)
                    .map(|i| ((i * (c.rank() + 2) + round * 7) as f32).sin())
                    .collect(),
            );
            let (payloads, ctx) = compressor.compress(&g, "t");
            let mut wire = payloads;
            wire.push(Payload::F32(ctx.meta.clone()));
            let bytes = encode(&wire);
            expected += bytes.len() as u64;
            let gathered = c.allgather_bytes(bytes);
            assert_eq!(gathered.len(), n);

            // And an uncompressed all-reduce leg, accounted by the ring
            // formula.
            let dense = vec![c.rank() as f32; 50];
            expected += ring_allreduce_wire_bytes(c.live_workers(), dense.len());
            let _ = c.allreduce_f32(dense);
        }
        (expected, c.traffic().clone())
    });
    let mut grand_total = 0u64;
    for (rank, (expected, traffic)) in per_worker.iter().enumerate() {
        assert_eq!(
            traffic.bytes_sent(rank),
            *expected,
            "rank {rank}: counter must equal shipped bytes exactly"
        );
        grand_total += expected;
    }
    assert_eq!(per_worker[0].1.total_bytes(), grand_total);
}

#[test]
fn threaded_traffic_matches_simulated_volume_up_to_codec_framing() {
    use grace::core::trainer::steps_per_epoch;
    let n = 3;
    let task = ClassificationDataset::synthetic(96, 8, 2, 0.3, 31);
    let cfg = config(n);
    // Simulated per-worker volume.
    let mut network = net();
    let mut optimizer = opt();
    let mut cs: Vec<Box<dyn Compressor>> = (0..n)
        .map(|_| Box::new(TopK::new(0.05)) as Box<dyn Compressor>)
        .collect();
    let mut ms: Vec<Box<dyn Memory>> = (0..n)
        .map(|_| Box::new(ResidualMemory::new()) as Box<dyn Memory>)
        .collect();
    let sim = run_simulated(
        &cfg,
        &mut network,
        &task,
        optimizer.as_mut(),
        &mut cs,
        &mut ms,
    );
    let threaded = run_threaded(&cfg, &task, |_rank| {
        (
            net(),
            opt(),
            Box::new(TopK::new(0.05)) as Box<dyn Compressor>,
            Box::new(ResidualMemory::new()) as Box<dyn Memory>,
        )
    });
    let steps = (cfg.epochs * steps_per_epoch(task.train_len(), n, cfg.batch_per_worker)) as f64;
    let sim_total = sim.bytes_per_worker_per_iter * steps;
    // The threaded wire adds self-describing codec framing (tags + lengths
    // + the meta payload header); allow a modest margin.
    let threaded_total = threaded.bytes_sent as f64;
    assert!(
        threaded_total >= sim_total,
        "threaded {threaded_total} < simulated {sim_total}"
    );
    assert!(
        threaded_total < sim_total * 1.5 + 1024.0,
        "framing overhead too large: {threaded_total} vs {sim_total}"
    );
}
