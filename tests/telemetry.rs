//! Telemetry integration tests: the Perfetto export obeys the minimal Chrome
//! trace-event schema, span recording preserves nesting/ordering invariants
//! for arbitrary shapes, and an export round-trips through the bundled JSON
//! parser.

use grace::telemetry::export::{metrics_jsonl_string, trace_json_string};
use grace::telemetry::json::{self, Value};
use grace::telemetry::metrics;
use grace::telemetry::trace::{self, EventKind};
use grace::telemetry::{set_level, Level, Stage, Track};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard};

/// Every test here mutates the process-wide telemetry level and the global
/// trace sink; serialise them (the harness runs tests on parallel threads).
fn serial() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Span names for the nesting property: recording wants `&'static str`.
static NAMES: [&str; 10] = ["d0", "d1", "d2", "d3", "d4", "d5", "d6", "d7", "d8", "d9"];

fn nest(depth: usize, track: Track) {
    if depth == 0 {
        return;
    }
    let _s = trace::span(NAMES[depth % NAMES.len()], track);
    nest(depth - 1, track);
}

#[test]
fn perfetto_export_obeys_minimal_schema() {
    let _g = serial();
    set_level(Level::Trace);
    trace::clear();
    {
        let _a = trace::span("encode", Track::Stage(Stage::Encode));
        let _b = trace::span("compress", Track::Lane(0));
    }
    {
        let _c = trace::span("compress", Track::Lane(1));
    }
    trace::instant_arg("fault: drop", Track::Stage(Stage::Fault), Some(("rank", 1)));
    let events = trace::take_events();
    set_level(Level::Off);

    let text = trace_json_string(&events);
    let doc = json::parse(&text).expect("export is valid JSON");
    assert!(
        doc.get("displayTimeUnit").is_some(),
        "displayTimeUnit missing"
    );
    let list = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");

    let mut meta_tids = Vec::new();
    let mut span_count = 0;
    let mut instant_count = 0;
    for ev in list {
        let ph = ev.get("ph").and_then(Value::as_str).expect("ph");
        assert!(ev.get("pid").is_some(), "pid missing on {ph}");
        assert!(ev.get("tid").is_some(), "tid missing on {ph}");
        match ph {
            "M" => {
                assert_eq!(ev.get("name").and_then(Value::as_str), Some("thread_name"));
                let label = ev
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Value::as_str)
                    .expect("thread_name args.name");
                assert!(!label.is_empty());
                meta_tids.push(ev.get("tid").and_then(Value::as_f64).unwrap() as u32);
            }
            "X" => {
                assert!(ev.get("ts").and_then(Value::as_f64).is_some(), "ts");
                assert!(ev.get("dur").and_then(Value::as_f64).is_some(), "dur");
                span_count += 1;
            }
            "i" => {
                // Instants need an explicit scope or Perfetto drops them.
                assert_eq!(ev.get("s").and_then(Value::as_str), Some("t"));
                instant_count += 1;
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert_eq!(span_count, 3);
    assert_eq!(instant_count, 1);
    // One thread_name record per distinct track, no duplicates.
    let expected: Vec<u32> = vec![
        Track::Stage(Stage::Encode).tid(),
        Track::Stage(Stage::Fault).tid(),
        Track::Lane(0).tid(),
        Track::Lane(1).tid(),
    ];
    meta_tids.sort_unstable();
    let mut expected = expected;
    expected.sort_unstable();
    assert_eq!(meta_tids, expected);
}

#[test]
fn metrics_jsonl_round_trips_percentiles() {
    let _g = serial();
    set_level(Level::Metrics);
    let h = metrics::histogram("test.telemetry_roundtrip_ns");
    for v in [100u64, 200, 400, 800, 100_000] {
        h.record(v);
    }
    metrics::counter("test.telemetry_roundtrip_total").add(3);
    let snaps = metrics::snapshot_all();
    set_level(Level::Off);

    let text = metrics_jsonl_string(&snaps);
    let mut saw_hist = false;
    let mut saw_counter = false;
    for line in text.lines() {
        let v = json::parse(line).expect("each JSONL line parses alone");
        let name = v.get("name").and_then(Value::as_str).unwrap();
        if name == "test.telemetry_roundtrip_ns" {
            saw_hist = true;
            assert_eq!(v.get("count").and_then(Value::as_f64), Some(5.0));
            let p = |k: &str| v.get(k).and_then(Value::as_f64).unwrap();
            assert!(p("p50") <= p("p95") && p("p95") <= p("p99"));
            assert!(p("p99") <= p("max"));
            assert_eq!(p("max"), 100_000.0);
        } else if name == "test.telemetry_roundtrip_total" {
            saw_counter = true;
            assert_eq!(v.get("value").and_then(Value::as_f64), Some(3.0));
        }
    }
    assert!(saw_hist && saw_counter, "metrics missing from JSONL");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Nested spans close inner-first, and every inner span's interval is
    /// contained in its encloser's — for any nesting depth on any track.
    #[test]
    fn nested_spans_are_ordered_and_contained(
        depth in 1usize..9,
        lane in 0usize..8,
    ) {
        let _g = serial();
        set_level(Level::Trace);
        trace::clear();
        nest(depth, Track::Lane(lane));
        let events = trace::take_events();
        set_level(Level::Off);

        prop_assert_eq!(events.len(), depth);
        for w in events.windows(2) {
            let (inner, outer) = (&w[0], &w[1]);
            prop_assert_eq!(inner.kind, EventKind::Span);
            // The encloser starts no later and ends no earlier.
            prop_assert!(outer.ts_ns <= inner.ts_ns);
            prop_assert!(
                outer.ts_ns + outer.dur_ns >= inner.ts_ns + inner.dur_ns,
                "outer [{}, +{}] does not contain inner [{}, +{}]",
                outer.ts_ns, outer.dur_ns, inner.ts_ns, inner.dur_ns
            );
        }
    }

    /// Sequential (sibling) spans are recorded in program order with
    /// non-decreasing start timestamps.
    #[test]
    fn sibling_spans_record_in_program_order(count in 1usize..16) {
        let _g = serial();
        set_level(Level::Trace);
        trace::clear();
        for i in 0..count {
            let _s = trace::span(NAMES[i % NAMES.len()], Track::Lane(0));
        }
        let events = trace::take_events();
        set_level(Level::Off);

        prop_assert_eq!(events.len(), count);
        for (i, ev) in events.iter().enumerate() {
            prop_assert_eq!(ev.name, NAMES[i % NAMES.len()]);
        }
        for w in events.windows(2) {
            prop_assert!(w[0].ts_ns <= w[1].ts_ns);
        }
    }
}

#[test]
fn export_run_writes_parseable_files() {
    let _g = serial();
    set_level(Level::Trace);
    trace::clear();
    {
        let _s = trace::span("encode", Track::Stage(Stage::Encode));
    }
    metrics::histogram("test.export_run_ns").record(42);
    let dir = std::env::temp_dir().join("grace_telemetry_test_export");
    let paths = grace::telemetry::export::export_run_to(&dir, "round trip/label").expect("export");
    set_level(Level::Off);
    trace::clear();

    // The label is sanitised into the file names.
    assert!(paths
        .trace
        .file_name()
        .unwrap()
        .to_str()
        .unwrap()
        .starts_with("round-trip-label"));
    let trace_text = std::fs::read_to_string(&paths.trace).expect("trace file");
    let doc = json::parse(&trace_text).expect("trace parses");
    assert!(doc.get("traceEvents").and_then(Value::as_array).is_some());
    let metrics_text = std::fs::read_to_string(&paths.metrics).expect("metrics file");
    for line in metrics_text.lines() {
        json::parse(line).expect("metrics line parses");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
