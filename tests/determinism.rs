//! Reproducibility: every experiment is a pure function of its seed.

use grace::compressors::registry;
use grace::core::trainer::{run_simulated, CodecTiming};
use grace::core::TrainConfig;
use grace::nn::data::ClassificationDataset;
use grace::nn::models;
use grace::nn::optim::Sgd;

fn run_once(id: &str, seed: u64) -> (f64, Vec<f32>) {
    let task = ClassificationDataset::synthetic(128, 8, 2, 0.3, seed);
    let mut net = models::mlp_classifier("m", 8, &[16], 2, seed);
    let mut cfg = TrainConfig::new(3, 8, 2, seed);
    cfg.codec = CodecTiming::Free;
    let mut opt = Sgd::new(0.05);
    let spec = registry::find(id).expect("registered");
    let (mut cs, mut ms) = registry::build_fleet(&spec, 3, seed);
    let res = run_simulated(&cfg, &mut net, &task, &mut opt, &mut cs, &mut ms);
    let params: Vec<f32> = net
        .export_params()
        .into_iter()
        .flat_map(|(_, t)| t.into_vec())
        .collect();
    (res.final_quality, params)
}

#[test]
fn randomized_compressors_reproduce_exactly_under_same_seed() {
    for id in ["qsgd", "randomk", "terngrad", "natural"] {
        let (q1, p1) = run_once(id, 5);
        let (q2, p2) = run_once(id, 5);
        assert_eq!(q1, q2, "{id}: quality differs across runs");
        assert_eq!(p1, p2, "{id}: parameters differ across runs");
    }
}

#[test]
fn different_seeds_change_randomized_trajectories() {
    let (_, p1) = run_once("randomk", 5);
    let (_, p2) = run_once("randomk", 6);
    assert_ne!(p1, p2, "different seeds must differ");
}

#[test]
fn deterministic_compressors_are_seed_invariant_given_fixed_data() {
    // Top-k has no RNG: with the same data/model seed but different
    // compressor fleet seeds, results must be identical.
    let task = ClassificationDataset::synthetic(128, 8, 2, 0.3, 9);
    let run = |fleet_seed: u64| {
        let mut net = models::mlp_classifier("m", 8, &[16], 2, 9);
        let mut cfg = TrainConfig::new(3, 8, 2, 9);
        cfg.codec = CodecTiming::Free;
        let mut opt = Sgd::new(0.05);
        let spec = registry::find("topk").expect("registered");
        let (mut cs, mut ms) = registry::build_fleet(&spec, 3, fleet_seed);
        run_simulated(&cfg, &mut net, &task, &mut opt, &mut cs, &mut ms).final_quality
    };
    assert_eq!(run(1), run(2));
}

#[test]
fn simulated_times_are_deterministic_with_modeled_codec() {
    let task = ClassificationDataset::synthetic(96, 8, 2, 0.3, 4);
    let run = || {
        let mut net = models::mlp_classifier("m", 8, &[16], 2, 4);
        let mut cfg = TrainConfig::new(2, 8, 1, 4);
        cfg.codec = CodecTiming::Modeled {
            per_op_seconds: 1e-4,
            ops_per_tensor: 4.0,
            ns_per_element: 4.0,
            tensor_count: 30,
        };
        cfg.byte_scale = 50.0;
        let mut opt = Sgd::new(0.05);
        let spec = registry::find("topk").expect("registered");
        let (mut cs, mut ms) = registry::build_fleet(&spec, 2, 4);
        let res = run_simulated(&cfg, &mut net, &task, &mut opt, &mut cs, &mut ms);
        (res.sim_seconds, res.codec_seconds, res.comm_seconds)
    };
    assert_eq!(run(), run(), "modeled clock must be exactly reproducible");
}
