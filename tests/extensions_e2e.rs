//! End-to-end coverage for the extension methods (DESIGN.md §7): full
//! distributed-loop runs, convergence sanity, and mode equivalence.

use grace::compressors::extensions::{extension_specs, SketchedSgd, SpectralLowRank};
use grace::core::threaded::run_threaded;
use grace::core::trainer::{run_simulated, CodecTiming};
use grace::core::{Compressor, Memory, NoMemory, ResidualMemory, TrainConfig};
use grace::nn::data::ClassificationDataset;
use grace::nn::models;
use grace::nn::optim::{Momentum, Optimizer};

fn config(n: usize, epochs: usize) -> TrainConfig {
    let mut cfg = TrainConfig::new(n, 16, epochs, 55);
    cfg.codec = CodecTiming::Free;
    cfg
}

#[test]
fn every_extension_survives_the_full_loop() {
    let task = ClassificationDataset::synthetic(256, 16, 4, 0.35, 55);
    for spec in extension_specs() {
        let mut net = models::mlp_classifier("m", 16, &[48], 4, 55);
        let cfg = config(4, 2);
        let mut opt = Momentum::new(0.05, 0.9);
        let (mut cs, mut ms) = grace::compressors::registry::build_fleet(&spec, 4, 55);
        let res = run_simulated(&cfg, &mut net, &task, &mut opt, &mut cs, &mut ms);
        assert!(res.best_quality.is_finite(), "{}", spec.id);
        assert!(
            res.bytes_per_worker_per_iter < res.uncompressed_bytes_per_iter,
            "{}: no volume reduction",
            spec.id
        );
    }
}

#[test]
fn qsparse_and_threelc_converge_near_baseline() {
    let task = ClassificationDataset::synthetic(512, 16, 4, 0.35, 55);
    let run = |id: Option<&str>| {
        let mut net = models::mlp_classifier("m", 16, &[48, 48], 4, 55);
        let cfg = config(4, 8);
        let mut opt = Momentum::new(0.05, 0.9);
        let (mut cs, mut ms) = match id {
            None => (
                (0..4)
                    .map(|_| Box::new(grace::core::NoCompression::new()) as Box<dyn Compressor>)
                    .collect(),
                (0..4)
                    .map(|_| Box::new(NoMemory::new()) as Box<dyn Memory>)
                    .collect(),
            ),
            Some(id) => {
                let spec = extension_specs().into_iter().find(|s| s.id == id).unwrap();
                grace::compressors::registry::build_fleet(&spec, 4, 55)
            }
        };
        run_simulated(&cfg, &mut net, &task, &mut opt, &mut cs, &mut ms).best_quality
    };
    let base = run(None);
    for id in ["qsparselocal", "threelc", "variance", "spectral"] {
        let q = run(Some(id));
        assert!(q > base - 0.2, "{id}: {q} too far below baseline {base}");
    }
}

#[test]
fn sketched_sgd_threaded_matches_simulated() {
    // The only extension with an Allreduce strategy and non-trivial
    // aggregation semantics: validate it across execution modes.
    let task = ClassificationDataset::synthetic(96, 8, 2, 0.3, 41);
    let mut cfg = TrainConfig::new(3, 8, 2, 41);
    cfg.codec = CodecTiming::Free;
    let make_c = || Box::new(SketchedSgd::new(5, 128, 0.05)) as Box<dyn Compressor>;
    let make_m = || Box::new(ResidualMemory::new()) as Box<dyn Memory>;

    let mut net = models::mlp_classifier("m", 8, &[12], 2, 41);
    let mut opt = Momentum::new(0.05, 0.9);
    let mut cs: Vec<Box<dyn Compressor>> = (0..3).map(|_| make_c()).collect();
    let mut ms: Vec<Box<dyn Memory>> = (0..3).map(|_| make_m()).collect();
    let sim = run_simulated(&cfg, &mut net, &task, &mut opt, &mut cs, &mut ms);
    let sim_params = net.export_params();

    let threaded = run_threaded(&cfg, &task, |_rank| {
        (
            models::mlp_classifier("m", 8, &[12], 2, 41),
            Box::new(Momentum::new(0.05, 0.9)) as Box<dyn Optimizer>,
            make_c(),
            make_m(),
        )
    });
    assert_eq!(threaded.final_quality, sim.final_quality);
    for ((na, ta), (_, tb)) in sim_params.iter().zip(threaded.final_params.iter()) {
        assert_eq!(ta.as_slice(), tb.as_slice(), "diverged at {na}");
    }
}

#[test]
fn spectral_outperforms_powersgd_in_per_step_fidelity() {
    use grace::tensor::rng::seeded;
    use grace::tensor::{Shape, Tensor};
    use rand::Rng;
    let mut rng = seeded(8);
    let data: Vec<f32> = (0..48 * 32).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let g = Tensor::new(data, Shape::matrix(48, 32));
    let mut spectral = SpectralLowRank::new(4, 4);
    let (p, ctx) = spectral.compress(&g, "w");
    let err = spectral.decompress(&p, &ctx).sub(&g).norm2() / g.norm2();
    let mut power = grace::compressors::PowerSgd::new(4);
    let (pp, pc) = power.compress(&g, "w");
    let perr = power.decompress(&pp, &pc).sub(&g).norm2() / g.norm2();
    assert!(
        err <= perr + 1e-4,
        "spectral ({err}) should not trail cold PowerSGD ({perr})"
    );
}
