//! Trigger paths of the black-box flight recorder.
//!
//! Each trigger — an anomaly trip, an injected fault instant, a wedged
//! socket rank's `ClusterError` — must drain the ring into a parseable
//! post-mortem bundle whose newest retained step is the step the run
//! tripped on (the recorder's whole point is preserving the window
//! *leading up to* the failure).
//!
//! The recorder is process-global (latched trip flag, pooled rings,
//! `GRACE_POSTMORTEM_DIR`), so the tests serialise on a mutex and reset
//! the recorder around each scenario.

use grace::analyze::{merge, postmortem};
use grace::comm::{FaultConfig, FaultPlan, FaultStats};
use grace::core::health::{HealthConfig, HealthMonitor, StepObservation};
use grace::core::process::run_cluster;
use grace::core::trainer::CodecTiming;
use grace::core::{Compressor, ExecBackend, Memory, ResidualMemory, TrainConfig};
use grace::nn::data::ClassificationDataset;
use grace::nn::models;
use grace::nn::network::Network;
use grace::nn::optim::{Momentum, Optimizer};
use grace::telemetry::{metrics, recorder, set_level, Level};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Duration;

static SERIAL: Mutex<()> = Mutex::new(());

/// Fresh bundle directory for one scenario; points the recorder at it.
fn arm_recorder(scenario: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("grace-flight-{}-{scenario}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::env::set_var("GRACE_POSTMORTEM_DIR", &dir);
    set_level(Level::Metrics);
    recorder::set_enabled(true);
    recorder::reset();
    dir
}

fn disarm_recorder() {
    std::env::remove_var("GRACE_POSTMORTEM_DIR");
    recorder::reset();
}

/// Newest step stamped on any retained instant (counter deltas and step
/// markers both carry a numeric `step` arg).
fn newest_step(traces: &[merge::RankTrace]) -> Option<u64> {
    traces
        .iter()
        .flat_map(|t| &t.events)
        .filter(|e| e.ph == "i")
        .filter_map(|e| e.arg_num("step"))
        .map(|s| s as u64)
        .max()
}

fn has_instant(traces: &[merge::RankTrace], name: &str) -> bool {
    traces
        .iter()
        .flat_map(|t| &t.events)
        .any(|e| e.ph == "i" && e.name == name)
}

fn assert_bundle_files(dir: &Path, rank: usize) {
    for kind in ["trace.json", "metrics.jsonl", "health.jsonl"] {
        let path = dir.join(format!("rank{rank}.{kind}"));
        assert!(path.is_file(), "bundle missing {}", path.display());
    }
}

#[test]
fn anomaly_trip_dumps_window_ending_at_trip_step() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let dir = arm_recorder("anomaly");
    recorder::configure("fr-anomaly", Some(0));

    let mut hc = HealthConfig::default().with_log(None);
    hc.warmup_steps = 2;
    hc.trip_steps = 1;
    hc.grad_spike_factor = 2.0;
    let mut monitor = HealthMonitor::new(hc).with_identity(0, "fr-anomaly");

    let wire = metrics::counter("traffic.bytes_total");
    let trip_step = 9u64;
    for step in 0..=trip_step {
        wire.add(128);
        recorder::observe_step(step);
        let grad_norm = if step == trip_step { 50.0 } else { 1.0 };
        monitor.observe_step(
            step,
            &StepObservation {
                grad_norm,
                ..Default::default()
            },
        );
    }

    assert_eq!(monitor.anomaly_count(), 1, "spike must fire exactly once");
    assert!(recorder::tripped(), "anomaly trip must latch the recorder");
    assert_bundle_files(&dir, 0);

    let traces = merge::load_dir(&dir).expect("bundle trace must parse");
    assert_eq!(traces.len(), 1);
    assert_eq!(traces[0].rank, Some(0));
    assert_eq!(newest_step(&traces), Some(trip_step));
    assert!(has_instant(&traces, "recorder: anomaly trip"));

    let health = merge::load_health_events(&dir);
    let last = health.last().expect("anomaly line in health sidecar");
    assert_eq!(last.step, trip_step);
    assert_eq!(last.kind, "grad_norm_spike");
    assert_eq!(last.rank, Some(0));

    let pm = postmortem::analyze(&traces, &health);
    assert_eq!(
        pm.triggers.first().map(|t| t.1.as_str()),
        Some("recorder: anomaly trip")
    );
    let text = postmortem::render(&pm, 5);
    assert!(text.contains("trip: \"recorder: anomaly trip\" on rank 0"));
    assert!(text.contains(&format!("grad_norm_spike at step {trip_step}")));

    disarm_recorder();
}

#[test]
fn injected_fault_instant_dumps_bundle() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let dir = arm_recorder("fault");
    recorder::configure("fr-fault", Some(1));

    let wire = metrics::counter("traffic.bytes_total");
    let trip_step = 6u64;
    for step in 0..=trip_step {
        wire.add(64);
        recorder::observe_step(step);
    }
    // A planned drop lands: the fault layer records the instant and trips
    // the recorder on the spot.
    FaultStats::new(4).record_drop(2);

    assert!(recorder::tripped());
    assert_bundle_files(&dir, 1);

    let traces = merge::load_dir(&dir).expect("bundle trace must parse");
    assert_eq!(traces[0].rank, Some(1));
    assert_eq!(newest_step(&traces), Some(trip_step));
    assert!(has_instant(&traces, "fault: drop"));

    let pm = postmortem::analyze(&traces, &merge::load_health_events(&dir));
    assert_eq!(
        pm.triggers.first().map(|t| t.1.as_str()),
        Some("fault: drop")
    );
    assert!(postmortem::render(&pm, 5).contains("trip: \"fault: drop\""));

    // A second drop is latched out: the instant is retained but the bundle
    // written at the *first* trip is not overwritten.
    let before = std::fs::metadata(dir.join("rank1.trace.json"))
        .unwrap()
        .len();
    FaultStats::new(4).record_drop(3);
    let after = std::fs::metadata(dir.join("rank1.trace.json"))
        .unwrap()
        .len();
    assert_eq!(before, after, "latched trigger must not re-dump");

    disarm_recorder();
}

#[test]
fn recorder_state_never_perturbs_training() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let dir = arm_recorder("equiv");
    let _ = dir;

    let run = || {
        let mut cfg = TrainConfig::new(3, 8, 2, 31);
        cfg.codec = CodecTiming::Free;
        cfg.telemetry = Some(Level::Metrics);
        let task = ClassificationDataset::synthetic(96, 8, 2, 0.3, 31);
        let result = grace::core::threaded::run_threaded(&cfg, &task, |_rank| {
            (
                models::mlp_classifier("m", 8, &[12], 2, 31) as Network,
                Box::new(Momentum::new(0.05, 0.9)) as Box<dyn Optimizer>,
                Box::new(grace::compressors::TopK::new(0.05)) as Box<dyn Compressor>,
                Box::new(ResidualMemory::new()) as Box<dyn Memory>,
            )
        });
        grace::core::param_checksum(&result.final_params)
    };

    recorder::set_enabled(true);
    let with_recorder = run();
    recorder::set_enabled(false);
    let without_recorder = run();
    recorder::set_enabled(true);

    assert_eq!(
        with_recorder, without_recorder,
        "the flight recorder observes the run; it must never change it"
    );
    disarm_recorder();
}

#[test]
fn wedged_socket_rank_dumps_bundle_on_cluster_error() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let dir = arm_recorder("cluster");

    let mut cfg = TrainConfig::new(3, 8, 2, 31);
    cfg.codec = CodecTiming::Free;
    cfg.backend = ExecBackend::SocketTcp;
    cfg.telemetry = Some(Level::Metrics);
    cfg.fault = Some(FaultConfig {
        plan: FaultPlan::empty().with_drop(1, 6),
        timeout: Some(Duration::from_secs(10)),
    });
    let (tx, rx) = std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || {
        let task = ClassificationDataset::synthetic(96, 8, 2, 0.3, 31);
        let result = run_cluster(&cfg, &task, |_rank| {
            (
                models::mlp_classifier("m", 8, &[12], 2, 31) as Network,
                Box::new(Momentum::new(0.05, 0.9)) as Box<dyn Optimizer>,
                Box::new(grace::compressors::TopK::new(0.05)) as Box<dyn Compressor>,
                Box::new(ResidualMemory::new()) as Box<dyn Memory>,
            )
        });
        let _ = tx.send(result);
    });
    let result = rx
        .recv_timeout(Duration::from_secs(60))
        .expect("faulted socket run deadlocked");
    handle.join().expect("runner panicked after reporting");

    assert_eq!(result.survivors, 2, "exactly the dropped rank must die");
    assert!(
        recorder::tripped(),
        "drop + ClusterError must trip the recorder"
    );
    assert_bundle_files(&dir, 0);

    // The bundle written at trip time parses and names the root trigger.
    let traces = merge::load_dir(&dir).expect("bundle trace must parse");
    let pm = postmortem::analyze(&traces, &merge::load_health_events(&dir));
    assert!(
        pm.triggers
            .iter()
            .any(|(_, reason, _)| reason == "fault: drop"),
        "trip-time bundle must carry the injected-fault trigger"
    );

    // The wedged rank's error path fires its own (latched-out) trigger;
    // an on-demand re-dump drains the ring again and must now show it.
    recorder::dump().expect("on-demand dump");
    let traces = merge::load_dir(&dir).expect("re-dumped trace must parse");
    assert!(has_instant(&traces, "recorder: cluster error"));
    assert!(
        newest_step(&traces).is_some(),
        "step deltas retained across the run"
    );

    disarm_recorder();
}
