//! With telemetry disabled the recording API must be allocation-free — the
//! whole hot path is a level check that branches out. This lives in its own
//! integration-test binary because it installs a counting global allocator
//! (and so must not share a process with unrelated parallel tests).

use grace::telemetry::trace::{self, StageTimer};
use grace::telemetry::{metrics, set_level, Level, Stage, Track};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn disabled_telemetry_hot_path_is_allocation_free() {
    set_level(Level::Off);
    // Handle resolution and the lazy sink/TLS machinery may allocate once;
    // do all of that before the measured window.
    let hist = metrics::histogram("alloc_test.latency_ns");
    let ctr = metrics::counter("alloc_test.total");
    {
        let _warm = trace::span("warmup", Track::Lane(0));
    }
    trace::instant("warmup", Track::Stage(Stage::Encode));

    let before = ALLOCS.load(Ordering::Relaxed);
    for i in 0..10_000u64 {
        let _s = trace::span("hot", Track::Lane(0));
        trace::instant_arg("hot", Track::Stage(Stage::Fault), Some(("rank", i)));
        let t = StageTimer::start();
        let ns = t.finish("hot", Track::Stage(Stage::Encode));
        hist.record(ns);
        ctr.add(1);
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "disabled telemetry hot path allocated {} times",
        after - before
    );
}
