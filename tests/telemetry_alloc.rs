//! With telemetry disabled the recording API must be allocation-free — the
//! whole hot path is a level check that branches out. This lives in its own
//! integration-test binary because it installs a counting global allocator
//! (and so must not share a process with unrelated parallel tests).
//!
//! The same harness also proves the pipelined exchange's steady-state claim:
//! after a warm-up step, `begin_step` + every `submit` reuse the engine's
//! pooled staging buffers and allocate nothing.

use grace::core::aggregation::sharded_mean_into;
use grace::core::{
    AggMerger, AggregationPlan, Compressor, Context, EncodedTensor, GradientExchange, HealthConfig,
    HealthMonitor, Payload, PayloadReader, PlanBuilder, StepObservation,
};
use grace::telemetry::trace::{self, StageTimer};
use grace::telemetry::{metrics, set_level, Level, Stage, Track};
use grace::tensor::{Shape, Tensor};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

// Counting per thread keeps each test's measured window immune to harness
// threads (libtest prints results concurrently). A const-initialized
// `Cell<u64>` has no destructor, so the TLS access inside the allocator can
// never itself allocate or run during teardown.
std::thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn allocs_on_this_thread() -> u64 {
    ALLOCS.with(|c| c.get())
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn disabled_telemetry_hot_path_is_allocation_free() {
    set_level(Level::Off);
    // Handle resolution and the lazy sink/TLS machinery may allocate once;
    // do all of that before the measured window.
    let hist = metrics::histogram("alloc_test.latency_ns");
    let ctr = metrics::counter("alloc_test.total");
    {
        let _warm = trace::span("warmup", Track::Lane(0));
    }
    trace::instant("warmup", Track::Stage(Stage::Encode));

    let before = allocs_on_this_thread();
    for i in 0..10_000u64 {
        let _s = trace::span("hot", Track::Lane(0));
        trace::instant_arg("hot", Track::Stage(Stage::Fault), Some(("rank", i)));
        let t = StageTimer::start();
        let ns = t.finish("hot", Track::Stage(Stage::Encode));
        hist.record(ns);
        ctr.add(1);
    }
    let after = allocs_on_this_thread();
    assert_eq!(
        after - before,
        0,
        "disabled telemetry hot path allocated {} times",
        after - before
    );
}

/// Wire trace-context handling must be free when tracing is off: stamping
/// a [`TraceCtx`] into its fixed 20-byte frame prefix and parsing it back
/// are pure stack operations, and the per-frame instants the socket path
/// emits (`net.frame.send` / `net.frame.recv`) vanish below the `Trace`
/// level — so context propagation costs the disabled send/recv hot path
/// nothing.
#[test]
fn disabled_tracing_wire_context_handling_is_allocation_free() {
    use grace::comm::TraceCtx;

    set_level(Level::Off);
    // First-touch the trace machinery outside the measured window.
    {
        let _warm = trace::span("warmup", Track::Net(0));
    }
    trace::instant("warmup", Track::Hub);

    let before = allocs_on_this_thread();
    let mut acc = 0u64;
    for i in 0..10_000u64 {
        let ctx = TraceCtx {
            seq: i,
            step: i / 4,
            origin: (i % 4) as u32,
        };
        let wire = ctx.to_bytes();
        let back = TraceCtx::from_bytes(&wire);
        acc = acc.wrapping_add(back.seq ^ back.step ^ u64::from(back.origin));
        trace::instant_arg("net.frame.send", Track::Net(0), Some(("bytes", i)));
        trace::instant_arg("net.frame.recv", Track::Net(0), Some(("bytes", i)));
    }
    let after = allocs_on_this_thread();
    std::hint::black_box(acc);
    assert_eq!(
        after - before,
        0,
        "disabled-tracing context handling allocated {} times",
        after - before
    );
}

/// The flight recorder's steady state must be allocation-free: with the
/// ring active (the always-on default) and telemetry at `Metrics`, every
/// span and instant lands in a pre-sized per-thread ring slot, watched
/// counter deltas fold into ring instants over pre-resolved handles, and
/// the periodic `GRACE_DUMP` poll reads an unset variable through a stack
/// buffer — no trigger, no allocation, for as long as the run lives.
#[test]
fn flight_recorder_steady_state_is_allocation_free() {
    use grace::telemetry::recorder;

    set_level(Level::Metrics);
    recorder::set_enabled(true);
    assert!(recorder::active());
    let wire = metrics::counter("traffic.bytes_total");
    // Warm-up: acquires this thread's ring segment, resolves the counter
    // watchlist, and first-touches the delta path.
    {
        let _warm = trace::span("recorder.warmup", Track::Lane(0));
    }
    trace::instant("recorder.warmup", Track::Stage(Stage::Encode));
    wire.add(64);
    recorder::observe_step(0);

    let before = allocs_on_this_thread();
    for step in 1..5_001u64 {
        let _s = trace::span("recorder.hot", Track::Lane(0));
        trace::instant_arg(
            "recorder.hot",
            Track::Stage(Stage::Comm),
            Some(("rank", step)),
        );
        let t = StageTimer::start();
        let ns = t.finish("recorder.hot", Track::Stage(Stage::Encode));
        std::hint::black_box(ns);
        wire.add(64);
        recorder::observe_step(step);
    }
    let after = allocs_on_this_thread();
    assert_eq!(
        after - before,
        0,
        "steady-state ring recording allocated {} times",
        after - before
    );
    assert!(!recorder::tripped(), "steady state must not trip");
}

/// The health monitor's steady state must also be allocation-free: with the
/// JSONL log disabled and no anomaly firing, `observe_step` is pure EWMA
/// arithmetic over pre-resolved gauge handles — even while a metrics
/// endpoint sits idle in `accept` on another thread.
#[test]
fn health_monitor_steady_state_is_allocation_free() {
    set_level(Level::Metrics);
    let server = grace::telemetry::serve::serve("127.0.0.1:0").expect("bind ephemeral port");
    let mut monitor = HealthMonitor::new(HealthConfig::default().with_log(None));
    let obs = StepObservation {
        grad_norm: 1.0,
        residual_norm: Some(0.25),
        compression_ratio: Some(32.0),
        overlap_ratio: Some(0.8),
        straggler_skew_seconds: Some(1.0e-5),
    };
    // Warm-up covers the EWMA seeding steps and any first-touch work.
    for step in 0..16u64 {
        monitor.observe_step(step, &obs);
    }

    let before = allocs_on_this_thread();
    for step in 16..10_016u64 {
        monitor.observe_step(step, &obs);
    }
    let after = allocs_on_this_thread();
    assert_eq!(
        after - before,
        0,
        "clean-path health monitoring allocated {} times",
        after - before
    );
    assert_eq!(monitor.anomaly_count(), 0, "steady input must not alert");
    drop(server);
}

/// A codec that transmits nothing: with no payload vectors and a rank-0
/// context shape, the whole encode path is allocation-free, which isolates
/// the *engine's* staging machinery in the measured window below.
struct NullCodec;

impl Compressor for NullCodec {
    fn name(&self) -> String {
        "Null".into()
    }

    fn compress(&mut self, _t: &Tensor, _name: &str) -> (Vec<Payload>, Context) {
        (Vec::new(), Context::shape_only(Shape::scalar()))
    }

    fn decompress(&mut self, _p: &[Payload], ctx: &Context) -> Tensor {
        Tensor::zeros(ctx.shape.clone())
    }
}

/// Steady-state pipelined submission must be allocation-free: the bucket
/// plan, per-lane staging tensors, and encode slots are all pooled on the
/// engine, so after one warm-up step a `begin_step` + full round of
/// `submit`s touches no allocator. (`finish` is excluded — aggregation
/// legitimately builds the result vector and report.)
#[test]
fn pipelined_submit_steady_state_is_allocation_free() {
    set_level(Level::Off);
    let n_workers = 2;
    let mut codecs: Vec<Box<dyn Compressor>> = (0..n_workers)
        .map(|_| Box::new(NullCodec) as Box<dyn Compressor>)
        .collect();
    let mut engine = GradientExchange::from_compressors(&mut codecs);

    let grads: Vec<(String, Tensor)> = (0..6)
        .map(|i| (format!("g{i}"), Tensor::from_vec(vec![i as f32; 32 + i])))
        .collect();
    let mut builder = PlanBuilder::new(256);
    for (name, t) in &grads {
        builder.push(name, t.len());
    }
    let plan = builder.finish();
    assert!(plan.n_buckets() > 1, "want a multi-bucket stream");

    // Warm-up: sizes the pools (staging tensors, slot vectors, plan cache).
    let mut session = engine.begin_step(&plan);
    for w in 0..n_workers {
        for (name, t) in &grads {
            session.submit(w, name, t);
        }
    }
    let _ = session.finish();

    let before = allocs_on_this_thread();
    for _ in 0..100 {
        let mut session = engine.begin_step(&plan);
        for w in 0..n_workers {
            for (name, t) in &grads {
                session.submit(w, name, t);
            }
        }
        // Letting the unfinished session fall out of scope is allowed; the
        // next begin_step reclaims the pools without reallocating.
        let _ = session;
    }
    let after = allocs_on_this_thread();
    assert_eq!(
        after - before,
        0,
        "steady-state pipelined submit allocated {} times",
        after - before
    );

    // The pools are still coherent: a finished step after the measured
    // window produces the full aggregated stream.
    let mut session = engine.begin_step(&plan);
    for w in 0..n_workers {
        for (name, t) in &grads {
            session.submit(w, name, t);
        }
    }
    let (aggregated, report) = session.finish();
    assert_eq!(aggregated.len(), grads.len());
    assert_eq!(report.buckets.len(), plan.n_buckets());
}

/// Steady-state homomorphic aggregation must be allocation-free: the
/// merger's fold scratch (code/aux buffers) and a caller-pooled output
/// tensor are sized by the first fold; every later fold of same-shape
/// contributions reuses that capacity.
#[test]
fn homomorphic_fold_steady_state_is_allocation_free() {
    set_level(Level::Off);
    let spec = grace::compressors::registry::find("eightbit").unwrap();
    let parts: Vec<EncodedTensor> = (0..3)
        .map(|w| {
            let mut c = (spec.build)(100 + w as u64);
            let data: Vec<f32> = (0..512)
                .map(|i| ((i + w * 97) as f32 * 0.03).sin())
                .collect();
            let (payloads, ctx) = c.compress(&Tensor::from_vec(data), "g");
            EncodedTensor { payloads, ctx }
        })
        .collect();
    let mut c = (spec.build)(100);
    let mut merger = AggMerger::new(AggregationPlan::HomomorphicSum);
    let mut out = Tensor::from_vec(Vec::new());

    // Warm-up sizes the fold scratch and the pooled output.
    let _ = merger.fold_homomorphic_into(c.as_mut(), &parts, &mut out);

    let before = allocs_on_this_thread();
    for _ in 0..1_000 {
        let _ = merger.fold_homomorphic_into(c.as_mut(), &parts, &mut out);
    }
    let after = allocs_on_this_thread();
    assert_eq!(
        after - before,
        0,
        "steady-state homomorphic fold allocated {} times",
        after - before
    );
}

/// The vectorized codec kernels must be allocation-free in steady state:
/// every `grace::tensor::simd` entry point writes into caller-owned slices,
/// so a full encode/decode round (norm scan → code-book quantize → byte
/// pack → byte unpack → dequantize → error-feedback axpy) over pooled
/// buffers touches no allocator — on whatever dispatch level is active,
/// including `GRACE_FORCE_SCALAR=1`.
#[test]
fn vectorized_codec_kernels_steady_state_is_allocation_free() {
    use grace::tensor::simd;

    set_level(Level::Off);
    let table: Vec<f32> = (0..128).map(|i| i as f32 / 127.0).collect();
    let xs: Vec<f32> = (0..1024).map(|i| ((i as f32) * 0.37).sin()).collect();
    let mut codes = vec![0u32; xs.len()];
    let mut bytes = vec![0u8; xs.len()];
    let mut wide = vec![0u32; xs.len()];
    let mut dec = vec![0f32; xs.len()];
    // Warm-up also resolves the cached dispatch decision (feature detection
    // and the env-var read) outside the measured window.
    simd::quantize_sign_mag(&table, &xs, 1.0, &mut codes);

    let before = allocs_on_this_thread();
    for _ in 0..1_000 {
        let max = f32::from_bits(simd::abs_max_bits(&xs));
        let inv = 1.0 / max.max(f32::MIN_POSITIVE);
        simd::quantize_sign_mag(&table, &xs, inv, &mut codes);
        simd::narrow_to_bytes(&codes, &mut bytes);
        simd::widen_from_bytes(&bytes, &mut wide);
        simd::dequant_sign_mag(&table, &wide, max, &mut dec);
        simd::dequant_sign_mag_add(&table, &wide, -0.5, &mut dec);
        simd::axpy(&mut dec, 0.25, &xs);
    }
    let after = allocs_on_this_thread();
    std::hint::black_box(&dec);
    assert_eq!(
        after - before,
        0,
        "steady-state vectorized codec kernels allocated {} times",
        after - before
    );
}

/// Zero-copy frame decoding must be allocation-free in steady state: the
/// [`PayloadReader`] validates the CRC envelope and yields borrowed
/// [`grace::core::PayloadView`]s over the frame body, and the pooled
/// `unpack_into` / `read_f32s_into` scratch buffers are sized by the first
/// pass — so re-decoding the same wire frame (the per-round receive path)
/// touches no allocator.
#[test]
fn zero_copy_decode_steady_state_is_allocation_free() {
    set_level(Level::Off);
    // A realistic wire frame: packed byte codes plus an f32 meta payload.
    let values: Vec<u32> = (0..512).map(|i| (i * 7) % 256).collect();
    let payloads = vec![
        Payload::packed(&values, 8),
        Payload::F32((0..16).map(|i| i as f32 * 0.5).collect()),
    ];
    let frame = grace::core::payload::encode(&payloads);
    let mut codes: Vec<u32> = Vec::new();
    let mut meta: Vec<f32> = Vec::new();

    let decode_frame = |codes: &mut Vec<u32>, meta: &mut Vec<f32>| {
        let mut r = PayloadReader::new_checked(&frame).expect("clean frame");
        let first = r.next_view().expect("clean frame").expect("packed view");
        first.unpack_into(codes);
        let second = r.next_view().expect("clean frame").expect("meta view");
        second.read_f32s_into(meta);
        assert!(r.next_view().expect("clean frame").is_none());
    };
    // Warm-up sizes the pooled scratch.
    decode_frame(&mut codes, &mut meta);

    let before = allocs_on_this_thread();
    for _ in 0..1_000 {
        decode_frame(&mut codes, &mut meta);
    }
    let after = allocs_on_this_thread();
    assert_eq!(
        after - before,
        0,
        "steady-state zero-copy decode allocated {} times",
        after - before
    );
    assert_eq!(codes.len(), 512);
    assert_eq!(meta.len(), 16);
}

/// Steady-state sharded merging must be allocation-free on the serial path
/// (`shards <= 1`): the fold writes into a caller-pooled output tensor that
/// `reset_for` resizes without reallocating once capacity exists. (The
/// multi-shard path spawns scoped threads and is measured by the bench, not
/// this harness — thread spawn allocates by design.)
#[test]
fn sharded_merge_steady_state_is_allocation_free() {
    set_level(Level::Off);
    let parts: Vec<Tensor> = (0..4)
        .map(|w| {
            Tensor::from_vec(
                (0..768)
                    .map(|i| ((i * 13 + w * 7) % 29) as f32 - 14.0)
                    .collect(),
            )
        })
        .collect();
    let mut out = Tensor::from_vec(Vec::new());

    // Warm-up sizes the pooled output.
    let _ = sharded_mean_into(&parts, &mut out, 1);

    let before = allocs_on_this_thread();
    for _ in 0..1_000 {
        let _ = sharded_mean_into(&parts, &mut out, 1);
    }
    let after = allocs_on_this_thread();
    assert_eq!(
        after - before,
        0,
        "steady-state sharded merge allocated {} times",
        after - before
    );
    let expect = (0..768)
        .map(|i| {
            (0..4)
                .map(|w| ((i * 13 + w * 7) % 29) as f32 - 14.0)
                .sum::<f32>()
                / 4.0
        })
        .collect::<Vec<f32>>();
    assert_eq!(out.as_slice(), &expect[..]);
}
