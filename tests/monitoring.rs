//! Live run-health monitoring, end to end.
//!
//! * **Exposition round-trip** — a real training run populates the metrics
//!   registry; the Prometheus endpoint serves it; the scraped text parses
//!   back into samples that match the registry snapshot exactly.
//! * **Chaos** — injected straggler faults on one rank must trip the
//!   monitor's `straggler_skew` anomaly; the identical run without faults
//!   must stay silent (hysteresis + absolute floor), and turning the
//!   monitor on must not change the trained bits.
//!
//! The metrics registry and telemetry level are process-global, so the
//! tests in this file serialize on one mutex.

use grace::comm::{FaultConfig, FaultPlan};
use grace::core::threaded::{run_threaded, ThreadedResult};
use grace::core::trainer::{run_simulated, CodecTiming};
use grace::core::{Compressor, HealthConfig, Memory, NoCompression, NoMemory, TrainConfig};
use grace::nn::data::ClassificationDataset;
use grace::nn::models;
use grace::nn::network::Network;
use grace::nn::optim::{Momentum, Optimizer};
use grace::telemetry::serve::{self, parse_exposition, prometheus_name};
use grace::telemetry::{json, metrics, MetricSnapshot};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

const N: usize = 3;

fn serial() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

fn task() -> ClassificationDataset {
    ClassificationDataset::synthetic(96, 8, 2, 0.3, 31)
}

fn config() -> TrainConfig {
    let mut cfg = TrainConfig::new(N, 8, 2, 31);
    cfg.codec = CodecTiming::Free;
    cfg.telemetry = Some(grace::telemetry::Level::Metrics);
    cfg
}

/// Hysteresis windows sized for this file's 8-step runs: 3 steps of
/// baseline, 3 consecutive breaches to fire. The straggler floor is high
/// enough that scheduling noise on a busy single-CPU host stays silent.
fn health(log: Option<PathBuf>) -> HealthConfig {
    let mut h = HealthConfig::default().with_log(log);
    h.warmup_steps = 3;
    h.trip_steps = 3;
    h.clear_steps = 3;
    h.straggler_floor_seconds = 10e-3;
    h
}

type Worker = (
    Network,
    Box<dyn Optimizer>,
    Box<dyn Compressor>,
    Box<dyn Memory>,
);

fn worker(_rank: usize) -> Worker {
    (
        models::mlp_classifier("m", 8, &[12], 2, 31),
        Box::new(Momentum::new(0.05, 0.9)) as Box<dyn Optimizer>,
        Box::new(NoCompression::new()) as Box<dyn Compressor>,
        Box::new(NoMemory::new()) as Box<dyn Memory>,
    )
}

fn run(cfg: &TrainConfig) -> ThreadedResult {
    run_threaded(cfg, &task(), worker)
}

fn temp_log(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("grace-monitoring-{name}.jsonl"));
    let _ = std::fs::remove_file(&path);
    path
}

fn logged_kinds(path: &PathBuf) -> Vec<String> {
    match std::fs::read_to_string(path) {
        Ok(text) => text
            .lines()
            .map(|line| {
                json::parse(line)
                    .expect("health log line is JSON")
                    .get("kind")
                    .and_then(|k| k.as_str())
                    .expect("health log line has kind")
                    .to_string()
            })
            .collect(),
        Err(_) => Vec::new(),
    }
}

#[test]
fn exposition_round_trips_through_live_server() {
    let _g = serial();
    metrics::reset_all();
    // A real (simulated-mode) training run populates exchange.* and
    // health.* series, including histograms.
    let cfg = {
        let mut c = config();
        c.health = Some(health(None));
        c
    };
    let t = task();
    let mut net = models::mlp_classifier("m", 8, &[12], 2, 31);
    let mut opt = Momentum::new(0.05, 0.9);
    let mut cs: Vec<Box<dyn Compressor>> = (0..N)
        .map(|_| Box::new(NoCompression::new()) as Box<dyn Compressor>)
        .collect();
    let mut ms: Vec<Box<dyn Memory>> = (0..N)
        .map(|_| Box::new(NoMemory::new()) as Box<dyn Memory>)
        .collect();
    let result = run_simulated(&cfg, &mut net, &t, &mut opt, &mut cs, &mut ms);
    assert!(result.steps > 0);

    // Serve, scrape, parse, compare against the registry snapshot.
    let server = serve::serve("127.0.0.1:0").expect("bind ephemeral port");
    let body = serve::scrape(server.local_addr(), "/metrics").expect("scrape");
    let samples = parse_exposition(&body).expect("exposition parses");
    let snaps = metrics::snapshot_all();
    assert!(!snaps.is_empty());
    let find = |name: &str| -> f64 {
        samples
            .iter()
            .find(|s| s.name == name && s.labels.is_empty())
            .unwrap_or_else(|| panic!("series {name} missing from exposition"))
            .value
    };
    for snap in &snaps {
        let mangled = prometheus_name(snap.name());
        match snap {
            MetricSnapshot::Counter { value, .. } => {
                assert_eq!(find(&mangled) as u64, *value, "counter {mangled}");
            }
            MetricSnapshot::Gauge { value, .. } => {
                let got = find(&mangled);
                assert!(
                    (got - value).abs() < 1e-9 * value.abs().max(1.0)
                        || (got.is_nan() && value.is_nan()),
                    "gauge {mangled}: scraped {got}, registry {value}"
                );
            }
            MetricSnapshot::Histogram { hist, .. } => {
                assert_eq!(
                    find(&format!("{mangled}_count")) as u64,
                    hist.count(),
                    "histogram {mangled} count"
                );
                assert_eq!(
                    find(&format!("{mangled}_sum")) as u64,
                    hist.sum(),
                    "histogram {mangled} sum"
                );
            }
        }
    }
    // The run itself must have produced the monitored series.
    for required in [
        "exchange_wire_bytes_per_step_count",
        "health_grad_norm",
        "health_tripped",
    ] {
        let _ = find(required);
    }
    // The health view agrees with a clean run.
    let health_body = serve::scrape(server.local_addr(), "/health").expect("health");
    let doc = json::parse(&health_body).expect("health JSON");
    assert_eq!(doc.get("status").and_then(|s| s.as_str()), Some("ok"));
}

#[test]
fn straggler_faults_trip_the_monitor_and_clean_runs_stay_silent() {
    let _g = serial();
    metrics::reset_all();

    // --- Clean monitored run: must stay silent and match unmonitored bits.
    let clean_log = temp_log("clean");
    let mut clean_cfg = config();
    clean_cfg.health = Some(health(Some(clean_log.clone())));
    let clean = run(&clean_cfg);
    assert_eq!(clean.survivors, N);
    assert_eq!(
        logged_kinds(&clean_log),
        Vec::<String>::new(),
        "clean run must not alert"
    );
    let unmonitored = run(&config());
    for ((na, ta), (nb, tb)) in clean
        .final_params
        .iter()
        .zip(unmonitored.final_params.iter())
    {
        assert_eq!(na, nb);
        assert_eq!(
            ta.as_slice(),
            tb.as_slice(),
            "monitoring changed the trained bits at {na}"
        );
    }

    // --- Faulty run: rank 1 stalls 20 ms before every collective from the
    // 4th step on (4 gradient tensors → 4 collectives per step), so its
    // peers pile up ~80 ms of barrier wait per step while rank 1 itself
    // waits least — a sustained skew far over the 10 ms floor.
    let mut fault_plan = FaultPlan::empty();
    for op in 12..32 {
        fault_plan = fault_plan.with_straggler(1, op, Duration::from_millis(20));
    }
    let fault_log = temp_log("faulty");
    let mut faulty_cfg = config();
    faulty_cfg.health = Some(health(Some(fault_log.clone())));
    faulty_cfg.fault = Some(FaultConfig {
        plan: fault_plan,
        timeout: Some(Duration::from_secs(20)),
    });
    let before = metrics::counter("health.anomalies.straggler_skew").get();
    let faulty = run(&faulty_cfg);
    assert_eq!(faulty.survivors, N, "stragglers must not kill workers");
    assert!(faulty.faults.total_injected() > 0);

    let kinds = logged_kinds(&fault_log);
    assert!(
        kinds.iter().any(|k| k == "straggler_skew"),
        "injected stragglers must trip the skew anomaly, got {kinds:?}"
    );
    assert!(
        metrics::counter("health.anomalies.straggler_skew").get() > before,
        "anomaly counter must advance"
    );

    let _ = std::fs::remove_file(&clean_log);
    let _ = std::fs::remove_file(&fault_log);
}
