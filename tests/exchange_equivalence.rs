//! Bit-equivalence regression tests for the `grace_core::exchange` engine.
//!
//! The golden checksums below were captured from `run_simulated` *before* the
//! exchange loops were extracted into [`grace::core::exchange`]; the refactor
//! (and its scoped-thread executor) must keep the trained parameters
//! bit-identical for one quantization, one sparsification and one low-rank
//! method. A second set of tests asserts that running the engine with
//! `threads = n` produces exactly the same parameters and `ExchangeReport`
//! byte counts as `threads = 1`.

use grace::compressors::{PowerSgd, Qsgd, TopK};
use grace::core::trainer::{run_simulated, CodecTiming};
use grace::core::{Compressor, Memory, NoMemory, ResidualMemory, TrainConfig};
use grace::nn::data::ClassificationDataset;
use grace::nn::models;
use grace::nn::optim::Momentum;
use grace::tensor::pack::crc32;

const SEED: u64 = 17;

type Fleet = (Vec<Box<dyn Compressor>>, Vec<Box<dyn Memory>>);

fn fleet(
    n: usize,
    make_c: impl Fn(usize) -> Box<dyn Compressor>,
    make_m: impl Fn() -> Box<dyn Memory>,
) -> Fleet {
    (
        (0..n).map(make_c).collect(),
        (0..n).map(|_| make_m()).collect(),
    )
}

/// Trains a small MLP with the given fleet and returns a CRC32 over the
/// little-endian bytes of every final parameter tensor (names included).
fn golden_run(
    make_c: impl Fn(usize) -> Box<dyn Compressor>,
    make_m: impl Fn() -> Box<dyn Memory>,
) -> u32 {
    let n = 4;
    let task = ClassificationDataset::synthetic(128, 8, 2, 0.3, SEED);
    let mut net = models::mlp_classifier("m", 8, &[16], 2, SEED);
    let mut opt = Momentum::new(0.05, 0.9);
    let mut cfg = TrainConfig::new(n, 8, 2, SEED);
    cfg.codec = CodecTiming::Free;
    let (mut cs, mut ms) = fleet(n, make_c, make_m);
    let _ = run_simulated(&cfg, &mut net, &task, &mut opt, &mut cs, &mut ms);
    let mut bytes = Vec::new();
    for (name, t) in net.export_params() {
        bytes.extend_from_slice(name.as_bytes());
        for v in t.as_slice() {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
    }
    crc32(&bytes)
}

#[test]
fn qsgd_parameters_match_pre_refactor_golden() {
    let crc = golden_run(
        |w| Box::new(Qsgd::new(16, 1000 + w as u64)),
        || Box::new(NoMemory::new()),
    );
    assert_eq!(crc, GOLDEN_QSGD, "quantization path diverged: {crc:#010x}");
}

#[test]
fn topk_parameters_match_pre_refactor_golden() {
    let crc = golden_run(
        |_w| Box::new(TopK::new(0.05)),
        || Box::new(ResidualMemory::new()),
    );
    assert_eq!(
        crc, GOLDEN_TOPK,
        "sparsification path diverged: {crc:#010x}"
    );
}

#[test]
fn powersgd_parameters_match_pre_refactor_golden() {
    let crc = golden_run(
        |_w| Box::new(PowerSgd::new(2)),
        || Box::new(ResidualMemory::new()),
    );
    assert_eq!(crc, GOLDEN_POWERSGD, "low-rank path diverged: {crc:#010x}");
}

/// `GOLDEN_TOPK`/`GOLDEN_POWERSGD` were captured from the pre-refactor
/// `run_simulated` at commit `bade74c` and have survived every refactor
/// since (Top-k is stateless per tensor; PowerSGD's q-state is name-keyed),
/// including the pipelined exchange: fusion order does not change what is
/// computed per tensor. `GOLDEN_QSGD` was re-captured when the trainer
/// switched to the streaming backward pass: QSGD draws its dither from one
/// sequential per-lane RNG substream, so feeding gradients in reverse layer
/// order (deepest first, the overlap-friendly order) permutes the draws.
/// The value is order-dependent but still fully deterministic — the
/// equivalence tests below pin it across executor widths and fusion sizes.
const GOLDEN_QSGD: u32 = 0xaa5f_d836;
const GOLDEN_TOPK: u32 = 0xe0ae_0255;
const GOLDEN_POWERSGD: u32 = 0xfc95_aeee;

/// Telemetry must be bit-invisible: with full tracing enabled the trained
/// parameters still hash to the pre-refactor goldens, and the run leaves
/// spans behind (i.e. tracing was actually on, not silently disabled).
#[test]
fn trace_enabled_run_matches_goldens() {
    use grace::telemetry::{set_level, trace, Level};
    set_level(Level::Trace);
    let crc = golden_run(
        |_w| Box::new(TopK::new(0.05)),
        || Box::new(ResidualMemory::new()),
    );
    trace::flush_thread();
    let spans = trace::take_events();
    set_level(Level::Off);
    assert_eq!(crc, GOLDEN_TOPK, "tracing changed the trained model");
    assert!(
        spans.iter().any(|e| e.name == "compress"),
        "tracing was enabled but no compress spans were recorded"
    );
    assert!(
        spans.iter().any(|e| e.name == "bucket"),
        "the pipelined exchange must leave per-bucket spans"
    );
}

/// Full training run with an explicit executor width; returns the parameter
/// checksum plus the byte accounting the `ExchangeReport`s fed into the
/// result, so the determinism tests can compare both.
fn threaded_run(
    threads: usize,
    make_c: impl Fn(usize) -> Box<dyn Compressor>,
    make_m: impl Fn() -> Box<dyn Memory>,
) -> (u32, f64) {
    let n = 4;
    let task = ClassificationDataset::synthetic(128, 8, 2, 0.3, SEED);
    let mut net = models::mlp_classifier("m", 8, &[16], 2, SEED);
    let mut opt = Momentum::new(0.05, 0.9);
    let mut cfg = TrainConfig::new(n, 8, 2, SEED);
    cfg.codec = CodecTiming::Free;
    cfg.exchange_threads = Some(threads);
    let (mut cs, mut ms) = fleet(n, make_c, make_m);
    let res = run_simulated(&cfg, &mut net, &task, &mut opt, &mut cs, &mut ms);
    let mut bytes = Vec::new();
    for (name, t) in net.export_params() {
        bytes.extend_from_slice(name.as_bytes());
        for v in t.as_slice() {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
    }
    (crc32(&bytes), res.bytes_per_worker_per_iter)
}

/// The scoped-thread executor must be invisible: `threads = n` and
/// `threads = 1` produce bit-identical parameters and identical
/// `ExchangeReport`-derived byte accounting.
#[test]
fn parallel_executor_is_bit_identical_to_sequential() {
    for (name, make_c) in [
        (
            "qsgd",
            (|w: usize| Box::new(Qsgd::new(16, 1000 + w as u64)) as Box<dyn Compressor>)
                as fn(usize) -> Box<dyn Compressor>,
        ),
        ("topk", |_w| Box::new(TopK::new(0.05))),
        ("powersgd", |_w| Box::new(PowerSgd::new(2))),
    ] {
        let make_m = || -> Box<dyn Memory> {
            if name == "qsgd" {
                Box::new(NoMemory::new())
            } else {
                Box::new(ResidualMemory::new())
            }
        };
        let (seq_crc, seq_bytes) = threaded_run(1, make_c, make_m);
        let (par_crc, par_bytes) = threaded_run(4, make_c, make_m);
        assert_eq!(
            seq_crc, par_crc,
            "{name}: parameters diverged under parallelism"
        );
        assert_eq!(
            seq_bytes.to_bits(),
            par_bytes.to_bits(),
            "{name}: byte accounting diverged under parallelism"
        );
    }
}

/// The sequential executor path must itself match the pre-refactor goldens
/// (i.e. `threads = 1` is not a differently-ordered code path).
#[test]
fn explicit_sequential_executor_matches_goldens() {
    let (crc, _) = threaded_run(
        1,
        |_w| Box::new(PowerSgd::new(2)),
        || Box::new(ResidualMemory::new()),
    );
    assert_eq!(crc, GOLDEN_POWERSGD);
}
