//! `AggAlgebra` conformance suite: the audit that gates which aggregation
//! plans a method may run under.
//!
//! Three pluggable plans ([`grace::core::AggregationPlan`]) must produce
//! **bit-identical** merges for every registered method whose `Agg` is the
//! elementwise mean — at any shard grain, for any gathered contribution set.
//! Worker *permutation* is only approximately invariant (f32 addition is
//! commutative but not associative), and that tolerance is asserted too.
//! The opt-out list is machine-readable: a method whose `Agg` is
//! data-dependent must declare [`grace::core::AggAlgebra::DataDependent`]
//! and appears in `AGG_OPT_OUT` below; the downgrade chain then pins it to
//! the reference plan.
//!
//! Gradients come from seeded proptest strategies, so failures replay.

use grace::compressors::extensions::extension_specs;
use grace::compressors::registry;
use grace::core::exchange::decode_gathered;
use grace::core::{
    AggAlgebra, AggMerger, AggregationPlan, CommStrategy, Compressor, CompressorSpec, Context,
    EncodedTensor, Payload,
};
use grace::tensor::Tensor;
use proptest::prelude::*;

const N_WORKERS: usize = 3;

/// Methods whose `Agg` inspects the whole decoded set (threshold
/// re-selection, ranking, any data-dependent reduction) and therefore only
/// run the reference `DecodeThenMerge` plan. Every registered method uses
/// the default elementwise mean today, so the list is empty — adding a
/// data-dependent method without registering it here fails
/// `algebra_audit_matches_the_opt_out_list`.
const AGG_OPT_OUT: &[&str] = &[];

/// Methods advertising the [`grace::core::HomomorphicAggregate`] capability:
/// codebook-space accumulation for the shared-scale quantizers, linear
/// scatter-add for the sketch. (The `Allreduce` families — Baseline,
/// PowerSGD, SketchedSGD, Spectral — are *natively* homomorphic through
/// `mean_payloads` and never reach the gather-side merge.)
const HOMOMORPHIC: &[&str] = &["eightbit", "lpcsvrg", "threelc", "sketchml"];

fn all_specs() -> Vec<CompressorSpec> {
    let mut specs = registry::all_specs();
    specs.extend(extension_specs());
    specs
}

/// Compresses one deterministic gradient per worker with per-worker-seeded
/// compressor instances — the same fleet shape the engine drives.
fn gather(spec: &CompressorSpec, data: &[f32]) -> Vec<EncodedTensor> {
    (0..N_WORKERS)
        .map(|w| {
            let mut c = (spec.build)(100 + w as u64);
            let per_worker: Vec<f32> = data
                .iter()
                .enumerate()
                .map(|(i, &v)| v + (w as f32) * 0.13 * ((i % 7) as f32 - 3.0))
                .collect();
            let (payloads, ctx) = c.compress(&Tensor::from_vec(per_worker), "t/w");
            EncodedTensor { payloads, ctx }
        })
        .collect()
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn gradient_values() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-10.0f32..10.0, 8..160)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole contract: for every registered + extension method, every
    /// plan's merge is bit-identical to the reference decode-then-`Agg`.
    #[test]
    fn every_plan_is_bit_identical_to_the_reference(data in gradient_values()) {
        for spec in all_specs() {
            let parts = gather(&spec, &data);
            let mut reference_c = (spec.build)(100);
            let expect = decode_gathered(reference_c.as_mut(), &parts);
            for plan in AggregationPlan::ALL {
                let mut c = (spec.build)(100);
                let mut merger = AggMerger::new(plan);
                let (got, stats) = merger.merge_gathered(c.as_mut(), &parts);
                prop_assert_eq!(
                    bits(&got),
                    bits(&expect),
                    "{} under {} (ran as {})",
                    spec.id,
                    plan,
                    stats.plan
                );
            }
        }
    }

    /// Shard-order invariance: the sharded fold is exact at every grain —
    /// shard boundaries never change the per-element fold order.
    #[test]
    fn sharded_merge_is_exact_at_any_shard_count(
        data in gradient_values(),
        shards in 1usize..9,
    ) {
        for spec in all_specs() {
            let parts = gather(&spec, &data);
            let mut reference_c = (spec.build)(100);
            let expect = decode_gathered(reference_c.as_mut(), &parts);
            let mut c = (spec.build)(100);
            let mut merger = AggMerger::new(AggregationPlan::ShardedMerge);
            merger.set_shards(shards);
            let (got, _) = merger.merge_gathered(c.as_mut(), &parts);
            prop_assert_eq!(
                bits(&got),
                bits(&expect),
                "{} at {} shards",
                spec.id,
                shards
            );
        }
    }

    /// Worker permutation is *approximately* invariant (f32 addition
    /// commutes but does not associate): reversing the gathered rank order
    /// moves the mean by at most a few ulps per contribution.
    #[test]
    fn worker_permutation_shifts_the_mean_by_ulps_only(data in gradient_values()) {
        for spec in all_specs() {
            let parts = gather(&spec, &data);
            let reversed: Vec<EncodedTensor> = parts.iter().rev().cloned().collect();
            let mut c = (spec.build)(100);
            let mut merger = AggMerger::new(AggregationPlan::default());
            let (fwd, _) = merger.merge_gathered(c.as_mut(), &parts);
            let (rev, _) = merger.merge_gathered(c.as_mut(), &reversed);
            let scale = fwd.norm_inf().max(1.0);
            for (a, b) in fwd.as_slice().iter().zip(rev.as_slice()) {
                prop_assert!(
                    (a - b).abs() <= 1e-4 * scale,
                    "{}: permutation moved {} -> {}",
                    spec.id,
                    a,
                    b
                );
            }
        }
    }
}

/// The machine-readable audit: a method's declared [`AggAlgebra`] must agree
/// with the opt-out list, and the homomorphic capability set must match the
/// documented table exactly.
#[test]
fn algebra_audit_matches_the_opt_out_list() {
    for spec in all_specs() {
        let mut c = (spec.build)(1);
        let data_dependent = c.agg_algebra() == AggAlgebra::DataDependent;
        assert_eq!(
            data_dependent,
            AGG_OPT_OUT.contains(&spec.id),
            "'{}' algebra audit disagrees with AGG_OPT_OUT",
            spec.id
        );
        let homomorphic = c.homomorphic().is_some();
        assert_eq!(
            homomorphic,
            HOMOMORPHIC.contains(&spec.id),
            "'{}' homomorphic capability disagrees with HOMOMORPHIC",
            spec.id
        );
        if homomorphic {
            assert_eq!(
                c.strategy(),
                CommStrategy::Allgather,
                "'{}' fold capability only applies to gathered merges",
                spec.id
            );
        }
    }
}

/// A synthetic method whose `Agg` re-ranks the decoded set — the shape of
/// compressor the opt-out exists for.
struct DataDependentAgg;

impl Compressor for DataDependentAgg {
    fn name(&self) -> String {
        "data-dependent".to_string()
    }

    fn strategy(&self) -> CommStrategy {
        CommStrategy::Allgather
    }

    fn compress(&mut self, tensor: &Tensor, _name: &str) -> (Vec<Payload>, Context) {
        (
            vec![Payload::F32(tensor.as_slice().to_vec())],
            Context::shape_only(tensor.shape().clone()),
        )
    }

    fn decompress(&mut self, payloads: &[Payload], ctx: &Context) -> Tensor {
        Tensor::new(payloads[0].as_f32().to_vec(), ctx.shape.clone())
    }

    fn aggregate(&mut self, parts: Vec<Tensor>) -> Tensor {
        // Keep only the largest-magnitude contribution per element — a
        // data-dependent reduction no rank-order fold reproduces.
        let mut out = parts[0].clone();
        for p in &parts[1..] {
            for (a, b) in out.as_mut_slice().iter_mut().zip(p.as_slice()) {
                if b.abs() > a.abs() {
                    *a = *b;
                }
            }
        }
        out
    }

    fn agg_algebra(&self) -> AggAlgebra {
        AggAlgebra::DataDependent
    }
}

/// The downgrade chain: homomorphic-incapable methods degrade to the
/// sharded fold; data-dependent methods degrade all the way to the
/// reference — and the merge output proves the declared `Agg` actually ran.
#[test]
fn downgrade_chain_respects_capability_and_algebra() {
    use grace::core::effective_plan;

    // A mean-elementwise method without the fold capability: HomomorphicSum
    // degrades one step, to ShardedMerge.
    let topk = registry::find("topk").unwrap();
    let mut c = (topk.build)(1);
    assert_eq!(
        effective_plan(AggregationPlan::HomomorphicSum, c.as_mut()),
        AggregationPlan::ShardedMerge
    );
    assert_eq!(
        effective_plan(AggregationPlan::ShardedMerge, c.as_mut()),
        AggregationPlan::ShardedMerge
    );

    // A capable method runs the requested plan unchanged.
    let eightbit = registry::find("eightbit").unwrap();
    let mut c = (eightbit.build)(1);
    assert_eq!(
        effective_plan(AggregationPlan::HomomorphicSum, c.as_mut()),
        AggregationPlan::HomomorphicSum
    );

    // Data-dependent `Agg`: both non-reference plans degrade to the
    // reference, and the merge truly runs the method's own `Agg`.
    let mut dd = DataDependentAgg;
    assert_eq!(
        effective_plan(AggregationPlan::HomomorphicSum, &mut dd),
        AggregationPlan::DecodeThenMerge
    );
    assert_eq!(
        effective_plan(AggregationPlan::ShardedMerge, &mut dd),
        AggregationPlan::DecodeThenMerge
    );
    let parts: Vec<EncodedTensor> = [[1.0f32, -5.0], [-3.0, 2.0]]
        .iter()
        .map(|v| {
            let (payloads, ctx) = dd.compress(&Tensor::from_vec(v.to_vec()), "t");
            EncodedTensor { payloads, ctx }
        })
        .collect();
    for plan in AggregationPlan::ALL {
        let mut merger = AggMerger::new(plan);
        let (out, stats) = merger.merge_gathered(&mut dd, &parts);
        assert_eq!(stats.plan, AggregationPlan::DecodeThenMerge, "{plan}");
        assert_eq!(out.as_slice(), &[-3.0, -5.0], "{plan}");
    }
}

/// Incast accounting: decoded merges absorb `n × dense` bytes; the
/// homomorphic fold absorbs only the compressed wire bytes — the reduction
/// the plan exists to buy.
#[test]
fn homomorphic_fold_shrinks_incast_bytes() {
    let spec = registry::find("eightbit").unwrap();
    let data: Vec<f32> = (0..4096)
        .map(|i| ((i * 37) % 101) as f32 / 50.0 - 1.0)
        .collect();
    let parts = gather(&spec, &data);
    let dense: u64 = (N_WORKERS * data.len() * 4) as u64;
    let wire: u64 = parts.iter().map(|p| p.wire_bytes() as u64).sum();

    let mut c = (spec.build)(100);
    let mut reference = AggMerger::new(AggregationPlan::DecodeThenMerge);
    let (_, ref_stats) = reference.merge_gathered(c.as_mut(), &parts);
    assert_eq!(ref_stats.incast_bytes, dense);
    assert!(ref_stats.decode_cpu_ns > 0);

    let mut homomorphic = AggMerger::new(AggregationPlan::HomomorphicSum);
    let (_, hom_stats) = homomorphic.merge_gathered(c.as_mut(), &parts);
    assert_eq!(hom_stats.incast_bytes, wire);
    assert_eq!(hom_stats.decode_cpu_ns, 0, "nothing decodes under the fold");
    // 8-bit codes: ~4x fewer bytes enter the merge than dense f32.
    assert!(
        hom_stats.incast_bytes * 3 < ref_stats.incast_bytes,
        "expected ≥3x incast reduction: {} vs {}",
        hom_stats.incast_bytes,
        ref_stats.incast_bytes
    );
}
