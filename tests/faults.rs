//! Seeded chaos matrix for the fault-injection layer.
//!
//! Acceptance properties of the fault subsystem, exercised end-to-end
//! through `run_threaded`:
//!
//! * a corrupted payload is **detected** via the CRC32 trailer and dropped
//!   from the aggregate with explicit accounting — never silently folded in;
//! * a dropped worker surfaces as degraded membership (survivors rescale),
//!   not a deadlock — every test runs under a hard deadline;
//! * the same `FaultPlan` seed yields the identical injected-fault counters
//!   across runs;
//! * faults that only delay (stragglers) leave the trained model
//!   bit-identical to a fault-free run.

use grace::comm::{FaultConfig, FaultPlan, FaultRates};
use grace::compressors::TopK;
use grace::core::threaded::{run_threaded, ThreadedResult};
use grace::core::trainer::CodecTiming;
use grace::core::{Compressor, Memory, ResidualMemory, TrainConfig};
use grace::nn::data::ClassificationDataset;
use grace::nn::models;
use grace::nn::network::Network;
use grace::nn::optim::{Momentum, Optimizer};
use std::time::Duration;

const N: usize = 3;

fn config(fault: Option<FaultConfig>) -> TrainConfig {
    let mut cfg = TrainConfig::new(N, 8, 2, 31);
    cfg.codec = CodecTiming::Free;
    cfg.fault = fault;
    cfg
}

type Worker = (
    Network,
    Box<dyn Optimizer>,
    Box<dyn Compressor>,
    Box<dyn Memory>,
);

fn worker(_rank: usize) -> Worker {
    (
        models::mlp_classifier("m", 8, &[12], 2, 31),
        Box::new(Momentum::new(0.05, 0.9)) as Box<dyn Optimizer>,
        Box::new(TopK::new(0.05)) as Box<dyn Compressor>,
        Box::new(ResidualMemory::new()) as Box<dyn Memory>,
    )
}

/// Runs a faulty training job under a hard test-level deadline, so a
/// deadlock in the degraded path fails the test instead of hanging it.
fn run_with_deadline(fault: FaultConfig, limit: Duration) -> ThreadedResult {
    let (tx, rx) = std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || {
        let task = ClassificationDataset::synthetic(96, 8, 2, 0.3, 31);
        let result = run_threaded(&config(Some(fault)), &task, worker);
        let _ = tx.send(result);
    });
    match rx.recv_timeout(limit) {
        Ok(result) => {
            handle.join().expect("worker panicked after reporting");
            result
        }
        Err(_) => panic!("faulty run exceeded its {limit:?} deadline: deadlock"),
    }
}

fn assert_params_finite(result: &ThreadedResult) {
    for (name, t) in &result.final_params {
        assert!(t.is_finite(), "non-finite parameters in {name}");
    }
}

#[test]
fn dropped_worker_degrades_without_deadlock() {
    let fault = FaultConfig {
        plan: FaultPlan::empty().with_drop(1, 6),
        timeout: Some(Duration::from_secs(10)),
    };
    let result = run_with_deadline(fault, Duration::from_secs(60));
    assert_eq!(result.survivors, N - 1, "exactly one worker drops");
    assert_eq!(result.faults.injected_drops, vec![0, 1, 0]);
    assert_eq!(result.faults.injected_corruptions, vec![0; N]);
    assert_params_finite(&result);
    assert!(result.final_quality.is_finite());
}

#[test]
fn corrupted_payload_is_detected_by_every_receiver_and_excluded() {
    let fault = FaultConfig {
        plan: FaultPlan::empty().with_bit_flip(0, 5, 12_345),
        timeout: Some(Duration::from_secs(10)),
    };
    let result = run_with_deadline(fault, Duration::from_secs(60));
    assert_eq!(result.survivors, N, "corruption must not kill anyone");
    assert_eq!(result.faults.injected_corruptions, vec![1, 0, 0]);
    // The sender corrupts its stream before deposit, so all N receivers
    // (the sender included) reject the identical bytes via the checksum.
    assert_eq!(result.faults.detected_corruptions, vec![1; N]);
    assert_params_finite(&result);
}

#[test]
fn straggler_only_plan_is_bit_transparent() {
    let plan = FaultPlan::empty()
        .with_straggler(0, 2, Duration::from_millis(2))
        .with_straggler(2, 7, Duration::from_millis(1))
        .with_straggler(1, 11, Duration::from_millis(1));
    let fault = FaultConfig {
        plan,
        timeout: Some(Duration::from_secs(10)),
    };
    let delayed = run_with_deadline(fault, Duration::from_secs(60));
    assert_eq!(delayed.survivors, N);
    assert_eq!(delayed.faults.injected_stragglers, vec![1, 1, 1]);
    assert_eq!(delayed.faults.detected_corruptions, vec![0; N]);

    // Delays reorder nothing: the trained model matches a fault-free run
    // bit for bit.
    let task = ClassificationDataset::synthetic(96, 8, 2, 0.3, 31);
    let clean = run_threaded(&config(None), &task, worker);
    assert_eq!(clean.final_quality, delayed.final_quality);
    for ((na, ta), (nb, tb)) in clean.final_params.iter().zip(delayed.final_params.iter()) {
        assert_eq!(na, nb);
        assert_eq!(ta.as_slice(), tb.as_slice(), "straggler altered {na}");
    }
}

/// Chaos case for the pipelined exchange: with a tiny fusion threshold the
/// gradient stream splits into one bucket per tensor, and the victim dies
/// on a collective in the *middle* of a step — after some of its buckets
/// were already encoded and deposited. The survivors must drain every
/// in-flight bucket, rescale the aggregate over the reduced membership, and
/// finish the job without deadlocking.
#[test]
fn worker_killed_mid_step_drains_in_flight_buckets_and_rescales() {
    // mlp_classifier("m", 8, &[12], 2) has 4 gradient tensors, so each step
    // issues 4 per-bucket collectives; op index 6 is the third tensor of
    // step 1 — strictly inside a step, never on a step boundary.
    let fault = FaultConfig {
        plan: FaultPlan::empty().with_drop(2, 6),
        timeout: Some(Duration::from_secs(10)),
    };
    let mut cfg = config(Some(fault));
    cfg.fusion_bytes = 1; // isolate every tensor into its own bucket
    let (tx, rx) = std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || {
        let task = ClassificationDataset::synthetic(96, 8, 2, 0.3, 31);
        let _ = tx.send(run_threaded(&cfg, &task, worker));
    });
    let result = match rx.recv_timeout(Duration::from_secs(60)) {
        Ok(result) => {
            handle.join().expect("worker panicked after reporting");
            result
        }
        Err(_) => panic!("mid-step kill deadlocked the pipelined exchange"),
    };
    assert_eq!(result.survivors, N - 1, "exactly one worker dies");
    assert_eq!(result.faults.injected_drops, vec![0, 0, 1]);
    assert_params_finite(&result);
    assert!(result.final_quality.is_finite());
}

// --- Socket chaos matrix -------------------------------------------------
//
// The same fault plans, injected on the real TCP transport. Degradation
// must match the threaded cluster's survivor-rescaling semantics bit for
// bit, and every failure path must surface a typed `ClusterError` instead
// of a hang.

/// Like [`run_with_deadline`], but over localhost TCP sockets.
fn run_socket_with_deadline(mut cfg: TrainConfig, limit: Duration) -> ThreadedResult {
    cfg.backend = grace::core::ExecBackend::SocketTcp;
    let (tx, rx) = std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || {
        let task = ClassificationDataset::synthetic(96, 8, 2, 0.3, 31);
        let _ = tx.send(grace::core::process::run_cluster(&cfg, &task, worker));
    });
    match rx.recv_timeout(limit) {
        Ok(result) => {
            handle.join().expect("worker panicked after reporting");
            result
        }
        Err(_) => panic!("faulty socket run exceeded its {limit:?} deadline: deadlock"),
    }
}

/// A worker killed in the middle of an allgather-laden step (one bucket per
/// tensor) must leave the socket survivors rescaling exactly like the
/// threaded survivors: same membership, same counters, same trained bits.
#[test]
fn socket_worker_killed_mid_allgather_rescales_like_threaded() {
    let fault = || FaultConfig {
        plan: FaultPlan::empty().with_drop(2, 6),
        timeout: Some(Duration::from_secs(10)),
    };
    let mut cfg = config(Some(fault()));
    cfg.fusion_bytes = 1; // op 6 lands strictly mid-step (4 tensors/step)
    let socket = run_socket_with_deadline(cfg.clone(), Duration::from_secs(60));
    assert_eq!(socket.survivors, N - 1, "exactly one worker dies");
    assert_eq!(socket.faults.injected_drops, vec![0, 0, 1]);
    assert_params_finite(&socket);

    let task = ClassificationDataset::synthetic(96, 8, 2, 0.3, 31);
    let threaded = run_threaded(&cfg, &task, worker);
    assert_eq!(threaded.survivors, socket.survivors);
    assert_eq!(threaded.final_quality, socket.final_quality);
    for ((na, ta), (nb, tb)) in threaded.final_params.iter().zip(socket.final_params.iter()) {
        assert_eq!(na, nb);
        assert_eq!(
            ta.as_slice(),
            tb.as_slice(),
            "degraded socket run diverged from degraded threaded run at {na}"
        );
    }
}

/// A payload bit flip on the socket path is caught by the CRC32 payload
/// trailer on **every** receiver — identical detection counters and
/// identical trained bits to the threaded path under the same plan.
#[test]
fn socket_payload_corruption_detected_by_every_rank_like_threaded() {
    let fault = || FaultConfig {
        plan: FaultPlan::empty().with_bit_flip(0, 5, 12_345),
        timeout: Some(Duration::from_secs(10)),
    };
    let socket = run_socket_with_deadline(config(Some(fault())), Duration::from_secs(60));
    assert_eq!(socket.survivors, N, "corruption must not kill anyone");
    assert_eq!(socket.faults.injected_corruptions, vec![1, 0, 0]);
    assert_eq!(socket.faults.detected_corruptions, vec![1; N]);

    let task = ClassificationDataset::synthetic(96, 8, 2, 0.3, 31);
    let threaded = run_threaded(&config(Some(fault())), &task, worker);
    assert_eq!(threaded.faults, socket.faults);
    assert_eq!(threaded.final_quality, socket.final_quality);
    for ((na, ta), (nb, tb)) in threaded.final_params.iter().zip(socket.final_params.iter()) {
        assert_eq!(na, nb);
        assert_eq!(
            ta.as_slice(),
            tb.as_slice(),
            "corrupted-run bits diverged at {na}"
        );
    }
}

/// A corrupted *frame* (wire-level, below the payload codec) must be
/// NACKed, retransmitted and never seen by the application: the gathered
/// bytes come through clean and only the stream counters betray the retry.
#[test]
fn socket_frame_corruption_is_rejected_then_resynced() {
    use grace::comm::net::run_socket_local;
    use grace::comm::{ClusterOptions, Collective};

    let out = run_socket_local(2, ClusterOptions::default(), None, |c| {
        if c.rank() == 0 {
            c.inject_frame_corruption();
        }
        let gathered = c.try_allgather_bytes(vec![0xAB; 512]).unwrap();
        (gathered, c.net_stats())
    });
    for (gathered, _) in &out {
        for slot in gathered {
            assert_eq!(
                slot.as_deref(),
                Some(&[0xAB; 512][..]),
                "payload must survive"
            );
        }
    }
    let stats = out[0].1;
    assert!(
        stats.resends >= 1,
        "rank 0 must retransmit after the NACK: {stats:?}"
    );
}

/// Same chaos, observed through the wire-health metrics: corrupting a
/// frame must increment `net.nack_total` and `net.retransmit_bytes_total`
/// while the application payload still round-trips byte-clean — the
/// counters are how a fleet dashboard sees retries the checksums hide.
#[test]
fn frame_corruption_increments_wire_counters_payload_stays_clean() {
    use grace::comm::net::run_socket_local;
    use grace::comm::{ClusterOptions, Collective};
    use grace::telemetry::{metrics, set_level, Level};

    let nacks = metrics::counter("net.nack_total");
    let resend_bytes = metrics::counter("net.retransmit_bytes_total");
    let (nacks_before, resend_before) = (nacks.get(), resend_bytes.get());
    set_level(Level::Metrics);
    let out = run_socket_local(2, ClusterOptions::default(), None, |c| {
        if c.rank() == 0 {
            c.inject_frame_corruption();
        }
        c.try_allgather_bytes(vec![0x5C; 256]).unwrap()
    });
    set_level(Level::Off);
    for gathered in &out {
        for slot in gathered {
            assert_eq!(
                slot.as_deref(),
                Some(&[0x5C; 256][..]),
                "payload must come through clean despite the frame chaos"
            );
        }
    }
    assert!(
        nacks.get() > nacks_before,
        "a corrupted frame must raise net.nack_total"
    );
    assert!(
        resend_bytes.get() > resend_before,
        "the verbatim retransmit must raise net.retransmit_bytes_total"
    );
}

/// Connecting to a dead endpoint returns a typed transport error within the
/// connect deadline — never a hang.
#[test]
fn socket_connect_refused_is_a_typed_error_not_a_hang() {
    use grace::comm::net::{Endpoint, NetConfig, SocketCluster};
    use grace::comm::ClusterError;

    // Bind-then-drop reserves a port with no listener behind it.
    let port = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().port()
    };
    let mut net_cfg = NetConfig::new(0, 3, Endpoint::Tcp(format!("127.0.0.1:{port}")));
    net_cfg.connect_timeout = Duration::from_millis(250);
    let started = std::time::Instant::now();
    match SocketCluster::connect(&net_cfg) {
        Err(ClusterError::Transport {
            rank: 0,
            op: 0,
            detail,
        }) => {
            assert!(detail.contains("connect"), "unexpected detail: {detail}");
        }
        other => panic!("expected ClusterError::Transport, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "connect failure took too long: no deadline applied"
    );
}

/// A rendezvous that never completes (world = 2, one rank shows up) aborts
/// at the accept deadline: the hub returns a typed error and tells the
/// rank that *did* connect, which errors out instead of waiting forever.
#[test]
fn socket_rendezvous_timeout_is_a_typed_error_on_both_sides() {
    use grace::comm::net::{Endpoint, HubServer, NetConfig, SocketCluster};
    use grace::comm::{ClusterError, ClusterOptions};

    let hub = HubServer::bind(
        &Endpoint::Tcp("127.0.0.1:0".to_string()),
        2,
        ClusterOptions::default(),
    )
    .unwrap()
    .with_accept_timeout(Duration::from_millis(300));
    let endpoint = hub.endpoint().clone();
    let hub = hub.spawn();
    let mut net_cfg = NetConfig::new(0, 2, endpoint);
    net_cfg.connect_timeout = Duration::from_secs(10);
    let client = std::thread::spawn(move || SocketCluster::connect(&net_cfg));
    match hub.join() {
        Err(ClusterError::Transport { detail, .. }) => {
            assert!(detail.contains("rendezvous"), "hub detail: {detail}");
        }
        other => panic!("hub must report the aborted rendezvous, got {other:?}"),
    }
    match client.join().unwrap() {
        Err(ClusterError::Transport {
            rank: 0, detail, ..
        }) => {
            assert!(detail.contains("rendezvous"), "client detail: {detail}");
        }
        Err(ClusterError::Timeout { rank: 0, .. }) => {} // hub died before writing
        other => panic!("client must see a typed error, got {other:?}"),
    }
}

#[test]
fn same_fault_seed_yields_identical_counters_across_runs() {
    let rates = FaultRates {
        straggler: 0.06,
        drop: 0.02,
        corrupt: 0.12,
        max_delay: Duration::from_micros(500),
    };
    // 2 epochs × 4 steps × 4 tensors = 32 collective ops per worker.
    let plan = FaultPlan::seeded(0xC0FFEE, N, 32, &rates);
    assert!(!plan.is_empty(), "rates this high must schedule faults");
    assert_eq!(
        plan,
        FaultPlan::seeded(0xC0FFEE, N, 32, &rates),
        "plan must be a pure function of its seed"
    );

    let run = |plan: FaultPlan| {
        run_with_deadline(
            FaultConfig {
                plan,
                timeout: Some(Duration::from_secs(10)),
            },
            Duration::from_secs(60),
        )
    };
    let first = run(plan.clone());
    let second = run(plan);
    assert_eq!(
        first.faults, second.faults,
        "same seed, same injected and detected counters"
    );
    assert_eq!(first.survivors, second.survivors);
    assert!(first.faults.total_injected() > 0, "the matrix must inject");
    assert_params_finite(&first);
    assert_params_finite(&second);
}
