//! End-to-end properties of the simulated clock: how network bandwidth,
//! transport, compression ratio and codec modeling interact — the causal
//! mechanisms behind the paper's Figures 1, 6, 9 and 10.

use grace::comm::{NetworkModel, Transport};
use grace::compressors::{registry, TopK};
use grace::core::trainer::{run_simulated, CodecTiming};
use grace::core::{Compressor, Memory, NoCompression, NoMemory, ResidualMemory, TrainConfig};
use grace::nn::data::ClassificationDataset;
use grace::nn::models;
use grace::nn::optim::Momentum;

type Fleet = (Vec<Box<dyn Compressor>>, Vec<Box<dyn Memory>>);

fn run(
    gbps: f64,
    transport: Transport,
    compressor_id: Option<&str>,
    codec: CodecTiming,
) -> grace::core::RunResult {
    let task = ClassificationDataset::synthetic(128, 16, 4, 0.3, 19);
    let mut net = models::mlp_classifier("m", 16, &[256, 128], 4, 19);
    let mut cfg = TrainConfig::new(4, 16, 2, 19);
    cfg.network = NetworkModel::new(gbps, transport);
    cfg.codec = codec;
    cfg.byte_scale = 100.0; // paper-scale gradients
    cfg.compute = grace::core::ComputeModel::new(1e-4);
    let mut opt = Momentum::new(0.05, 0.9);
    let (mut cs, mut ms): Fleet = match compressor_id {
        None => (
            (0..4)
                .map(|_| Box::new(NoCompression::new()) as Box<dyn Compressor>)
                .collect(),
            (0..4)
                .map(|_| Box::new(NoMemory::new()) as Box<dyn Memory>)
                .collect(),
        ),
        Some(id) => {
            let spec = registry::find(id).expect("registered");
            registry::build_fleet(&spec, 4, 19)
        }
    };
    run_simulated(&cfg, &mut net, &task, &mut opt, &mut cs, &mut ms)
}

#[test]
fn sparsification_wins_at_low_bandwidth() {
    // Fig. 10's mechanism: at 1 Gbps the baseline is communication-bound and
    // Top-k's tiny payloads dominate even with codec cost charged.
    let codec = CodecTiming::Modeled {
        per_op_seconds: 1e-4,
        ops_per_tensor: 4.0,
        ns_per_element: 4.0,
        tensor_count: 30,
    };
    let base = run(1.0, Transport::Tcp, None, CodecTiming::Free);
    let topk = run(1.0, Transport::Tcp, Some("topk"), codec);
    assert!(
        topk.throughput > 1.5 * base.throughput,
        "topk {} vs baseline {}",
        topk.throughput,
        base.throughput
    );
}

#[test]
fn codec_cost_can_erase_the_win_at_high_bandwidth() {
    // Fig. 1's 8-bit lesson: same method, same volume — at 25 Gbps a heavy
    // codec makes it slower than no compression.
    let heavy_codec = CodecTiming::Modeled {
        per_op_seconds: 1e-4,
        ops_per_tensor: 8.0,
        ns_per_element: 6.0,
        tensor_count: 30,
    };
    let base = run(25.0, Transport::Tcp, None, CodecTiming::Free);
    let eightbit = run(25.0, Transport::Tcp, Some("eightbit"), heavy_codec);
    assert!(
        eightbit.throughput < base.throughput,
        "8-bit {} should lose to baseline {} at 25 Gbps",
        eightbit.throughput,
        base.throughput
    );
    // But the identical run wins once codec time is free — the overhead is
    // the whole story.
    let free = run(25.0, Transport::Tcp, Some("eightbit"), CodecTiming::Free);
    assert!(free.throughput > base.throughput);
}

#[test]
fn rdma_beats_tcp_for_every_method() {
    for id in [None, Some("topk"), Some("qsgd")] {
        let tcp = run(10.0, Transport::Tcp, id, CodecTiming::Free);
        let rdma = run(10.0, Transport::Rdma, id, CodecTiming::Free);
        assert!(
            rdma.throughput > tcp.throughput,
            "{id:?}: rdma {} <= tcp {}",
            rdma.throughput,
            tcp.throughput
        );
    }
}

#[test]
fn bandwidth_changes_time_but_not_learning() {
    let slow = run(1.0, Transport::Tcp, Some("topk"), CodecTiming::Free);
    let fast = run(25.0, Transport::Tcp, Some("topk"), CodecTiming::Free);
    assert_eq!(slow.final_quality, fast.final_quality);
    assert_eq!(
        slow.bytes_per_worker_per_iter,
        fast.bytes_per_worker_per_iter
    );
    assert!(slow.sim_seconds > fast.sim_seconds);
}

#[test]
fn volume_metric_tracks_sparsity_ratio() {
    let task = ClassificationDataset::synthetic(64, 16, 4, 0.3, 23);
    let volume = |ratio: f64| {
        let mut net = models::mlp_classifier("m", 16, &[64], 4, 23);
        let mut cfg = TrainConfig::new(2, 16, 1, 23);
        cfg.codec = CodecTiming::Free;
        let mut opt = Momentum::new(0.05, 0.9);
        let mut cs: Vec<Box<dyn Compressor>> = (0..2)
            .map(|_| Box::new(TopK::new(ratio)) as Box<dyn Compressor>)
            .collect();
        let mut ms: Vec<Box<dyn Memory>> = (0..2)
            .map(|_| Box::new(ResidualMemory::new()) as Box<dyn Memory>)
            .collect();
        run_simulated(&cfg, &mut net, &task, &mut opt, &mut cs, &mut ms).bytes_per_worker_per_iter
    };
    let v1 = volume(0.01);
    let v10 = volume(0.1);
    // Values + 4-byte indices: volume scales near-linearly with the kept
    // count (ceil-per-tensor rounding keeps small tensors above the ratio).
    let ratio = v10 / v1;
    assert!(
        (7.0..=11.0).contains(&ratio),
        "volume should scale ~10x: {v1} -> {v10} ({ratio}x)"
    );
}
