//! End-to-end: every registered compressor trains the classification analog
//! through the full distributed loop without crashing, and the key methods
//! converge.

use grace::compressors::registry;
use grace::core::trainer::{run_simulated, CodecTiming};
use grace::core::{Compressor, Memory, NoCompression, NoMemory, TrainConfig};
use grace::nn::data::{ClassificationDataset, Task};
use grace::nn::models;
use grace::nn::optim::{Momentum, Optimizer, Sgd};

type Fleet = (Vec<Box<dyn Compressor>>, Vec<Box<dyn Memory>>);

fn train(task: &dyn Task, compressor_id: Option<&str>, epochs: usize) -> grace::core::RunResult {
    let mut net = models::mlp_classifier("m", 16, &[48, 48], 4, 77);
    let mut cfg = TrainConfig::new(4, 16, epochs, 77);
    cfg.codec = CodecTiming::Free;
    let mut opt: Box<dyn Optimizer> = match compressor_id {
        Some("signsgd") | Some("signum") => Box::new(Sgd::new(0.005)),
        Some("randomk") => Box::new(Sgd::new(0.5)),
        Some("powersgd") | Some("dgc") => Box::new(Sgd::new(0.05)),
        _ => Box::new(Momentum::new(0.05, 0.9)),
    };
    let (mut cs, mut ms): Fleet = match compressor_id {
        None => (
            (0..4)
                .map(|_| Box::new(NoCompression::new()) as Box<dyn Compressor>)
                .collect(),
            (0..4)
                .map(|_| Box::new(NoMemory::new()) as Box<dyn Memory>)
                .collect(),
        ),
        Some(id) => {
            let spec = registry::find(id).expect("registered");
            registry::build_fleet(&spec, 4, 77)
        }
    };
    run_simulated(&cfg, &mut net, task, opt.as_mut(), &mut cs, &mut ms)
}

#[test]
fn every_compressor_survives_the_full_loop() {
    let task = ClassificationDataset::synthetic(256, 16, 4, 0.35, 77);
    for spec in registry::all_specs() {
        let res = train(&task, Some(spec.id), 2);
        assert!(
            res.best_quality.is_finite(),
            "{}: non-finite quality",
            spec.id
        );
        assert!(res.bytes_per_worker_per_iter > 0.0, "{}: no bytes", spec.id);
        assert!(
            res.bytes_per_worker_per_iter <= res.uncompressed_bytes_per_iter * 1.05,
            "{}: volume {} exceeds raw {}",
            spec.id,
            res.bytes_per_worker_per_iter,
            res.uncompressed_bytes_per_iter
        );
    }
}

#[test]
fn key_methods_converge_near_baseline() {
    let task = ClassificationDataset::synthetic(512, 16, 4, 0.35, 77);
    let base = train(&task, None, 10);
    assert!(base.best_quality > 0.85, "baseline {}", base.best_quality);
    for id in [
        "topk",
        "qsgd",
        "eightbit",
        "terngrad",
        "efsignsgd",
        "onebit",
    ] {
        let res = train(&task, Some(id), 10);
        assert!(
            res.best_quality > base.best_quality - 0.15,
            "{id}: {} vs baseline {}",
            res.best_quality,
            base.best_quality
        );
    }
}

#[test]
fn sparsifiers_cut_volume_by_orders_of_magnitude() {
    let task = ClassificationDataset::synthetic(128, 16, 4, 0.35, 77);
    for id in ["topk", "randomk"] {
        let res = train(&task, Some(id), 1);
        assert!(
            res.compression_ratio() > 30.0,
            "{id}: only {}x",
            res.compression_ratio()
        );
    }
    // Quantizers land near their per-element bit budget.
    let q = train(&task, Some("qsgd"), 1);
    assert!(
        q.compression_ratio() > 3.0 && q.compression_ratio() < 5.0,
        "qsgd: {}x (expected ~4x at 8 bits/element)",
        q.compression_ratio()
    );
    let s = train(&task, Some("signsgd"), 1);
    assert!(
        s.compression_ratio() > 25.0,
        "signsgd: {}x (expected ~32x at 1 bit/element)",
        s.compression_ratio()
    );
}

#[test]
fn quality_monotonicity_under_heavier_sparsification() {
    // Very heavy compression (0.001) must not beat light compression (0.1)
    // on final quality in a short run — the paper's Fig. 6d inset trend.
    use grace::compressors::TopK;
    use grace::core::ResidualMemory;
    let task = ClassificationDataset::synthetic(512, 16, 4, 0.35, 77);
    let run = |ratio: f64| {
        let mut net = models::mlp_classifier("m", 16, &[48, 48], 4, 77);
        let mut cfg = TrainConfig::new(4, 16, 6, 77);
        cfg.codec = CodecTiming::Free;
        let mut opt = Momentum::new(0.05, 0.9);
        let mut cs: Vec<Box<dyn Compressor>> = (0..4)
            .map(|_| Box::new(TopK::new(ratio)) as Box<dyn Compressor>)
            .collect();
        let mut ms: Vec<Box<dyn Memory>> = (0..4)
            .map(|_| Box::new(ResidualMemory::new()) as Box<dyn Memory>)
            .collect();
        run_simulated(&cfg, &mut net, &task, &mut opt, &mut cs, &mut ms).best_quality
    };
    let light = run(0.1);
    let heavy = run(0.001);
    assert!(
        light >= heavy - 0.02,
        "light {light} should not lose clearly to heavy {heavy}"
    );
}
