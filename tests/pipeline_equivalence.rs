//! Bit-equivalence suite for the pipelined (bucketed) exchange.
//!
//! The PR-2 contract — compression results never depend on *how* the
//! exchange is executed — extends to tensor fusion: for every registered
//! method, streaming gradients through `begin_step`/`submit`/`finish` must
//! produce exactly the bytes of the one-shot `exchange()`, at any fusion
//! threshold, any executor width, and any submission order. The canonical
//! per-lane encode order is *plan* order, which is what makes the
//! sequential-RNG methods (QSGD dither, RandomK selection) invariant to
//! arrival interleavings.

use grace::compressors::extensions::extension_specs;
use grace::compressors::registry;
use grace::core::trainer::{run_simulated, CodecTiming};
use grace::core::{Compressor, CompressorSpec, GradientExchange, Memory, PlanBuilder, TrainConfig};
use grace::nn::data::ClassificationDataset;
use grace::nn::models;
use grace::nn::optim::Momentum;
use grace::tensor::pack::crc32;
use grace::tensor::Tensor;

/// The paper's 16 registry methods plus the extension methods.
fn all_specs() -> Vec<CompressorSpec> {
    let mut specs = registry::all_specs();
    specs.extend(extension_specs());
    specs
}

type Fleet = (Vec<Box<dyn Compressor>>, Vec<Box<dyn Memory>>);

const N_WORKERS: usize = 3;

/// Deterministic per-worker gradient streams: varied tensor sizes so small
/// fusion thresholds split the stream into several buckets.
fn worker_grads(step: u64) -> Vec<Vec<(String, Tensor)>> {
    let sizes = [33usize, 7, 128, 64, 5];
    (0..N_WORKERS)
        .map(|w| {
            sizes
                .iter()
                .enumerate()
                .map(|(i, &len)| {
                    let data: Vec<f32> = (0..len)
                        .map(|j| {
                            let x = (w * 7919 + i * 611 + j) as f32 + step as f32 * 0.37;
                            (x * 0.01).sin() * 3.0
                        })
                        .collect();
                    (format!("l{i}/w"), Tensor::from_vec(data))
                })
                .collect()
        })
        .collect()
}

fn fleet(spec: &CompressorSpec) -> Fleet {
    (
        (0..N_WORKERS)
            .map(|w| (spec.build)(100 + w as u64))
            .collect(),
        (0..N_WORKERS).map(|_| (spec.build_memory)()).collect(),
    )
}

fn assert_bit_equal(a: &[(String, Tensor)], b: &[(String, Tensor)], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: tensor count");
    for ((an, at), (bn, bt)) in a.iter().zip(b) {
        assert_eq!(an, bn, "{what}: name order");
        let ab: Vec<u32> = at.as_slice().iter().map(|v| v.to_bits()).collect();
        let bb: Vec<u32> = bt.as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(ab, bb, "{what}: '{an}' bits diverged");
    }
}

/// Streams `grads` through a pipelined session in plan order.
fn run_session(
    engine: &mut GradientExchange<'_>,
    fusion_bytes: usize,
    grads: &[Vec<(String, Tensor)>],
) -> (Vec<(String, Tensor)>, grace::core::ExchangeReport) {
    let mut builder = PlanBuilder::new(fusion_bytes);
    for (name, t) in &grads[0] {
        builder.push(name, t.len());
    }
    let plan = builder.finish();
    let mut session = engine.begin_step(&plan);
    for (w, stream) in grads.iter().enumerate() {
        for (name, t) in stream {
            session.submit(w, name, t);
        }
    }
    session.finish()
}

/// Every registered method, two steps (so error-feedback state carries
/// over), three fusion thresholds: the pipelined session must reproduce the
/// one-shot exchange bit-for-bit, including the byte accounting.
#[test]
fn pipelined_session_matches_one_shot_for_every_method() {
    for fusion_bytes in [1usize, 64 << 10, usize::MAX] {
        for spec in all_specs() {
            let (mut c1, mut m1) = fleet(&spec);
            let mut one_shot = GradientExchange::from_fleet(&mut c1, &mut m1);
            let (mut c2, mut m2) = fleet(&spec);
            let mut pipelined = GradientExchange::from_fleet(&mut c2, &mut m2);
            for step in 0..2 {
                let grads = worker_grads(step);
                let (base, base_rep) = one_shot.exchange(grads.clone());
                let (piped, piped_rep) = run_session(&mut pipelined, fusion_bytes, &grads);
                assert_bit_equal(
                    &base,
                    &piped,
                    &format!("{} (fusion {fusion_bytes}, step {step})", spec.id),
                );
                assert_eq!(
                    base_rep.payload_bytes, piped_rep.payload_bytes,
                    "{}: payload bytes diverged",
                    spec.id
                );
                assert_eq!(
                    base_rep.wire_bytes(),
                    piped_rep.wire_bytes(),
                    "{}: wire bytes diverged",
                    spec.id
                );
                assert_eq!(
                    base_rep.elements(),
                    piped_rep.elements(),
                    "{}: element count diverged",
                    spec.id
                );
            }
        }
    }
}

/// The scoped-thread executor stays invisible through the session path:
/// `threads = 4` and `threads = 1` produce identical bytes.
#[test]
fn session_is_bit_identical_across_executor_widths() {
    for spec in all_specs() {
        let (mut c1, mut m1) = fleet(&spec);
        let mut seq = GradientExchange::from_fleet(&mut c1, &mut m1).with_threads(1);
        let (mut c2, mut m2) = fleet(&spec);
        let mut par = GradientExchange::from_fleet(&mut c2, &mut m2).with_threads(4);
        for step in 0..2 {
            let grads = worker_grads(step);
            let (a, _) = run_session(&mut seq, 256, &grads);
            let (b, _) = run_session(&mut par, 256, &grads);
            assert_bit_equal(&a, &b, &format!("{} (threads 1 vs 4)", spec.id));
        }
    }
}

/// Submission order must not matter: the canonical per-lane encode order is
/// plan order, so any arrival interleaving yields the same bytes. Orders
/// are derived from a seeded Fisher–Yates shuffle so failures replay.
#[test]
fn arbitrary_submission_orders_are_bit_identical() {
    fn shuffled(n: usize, mut state: u64) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            // SplitMix64 step — cheap, deterministic, and good enough to
            // exercise every interleaving class over a 5-tensor stream.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            idx.swap(i, (z % (i as u64 + 1)) as usize);
        }
        idx
    }

    // QSGD and RandomK draw from one sequential per-lane RNG substream, so
    // they are the methods an ordering bug would break first; run the whole
    // registry anyway.
    for spec in all_specs() {
        let (mut c1, mut m1) = fleet(&spec);
        let mut reference = GradientExchange::from_fleet(&mut c1, &mut m1);
        let (mut c2, mut m2) = fleet(&spec);
        let mut scrambled = GradientExchange::from_fleet(&mut c2, &mut m2);
        for round in 0..4u64 {
            let grads = worker_grads(round);
            let (base, _) = run_session(&mut reference, 64, &grads);

            let mut builder = PlanBuilder::new(64);
            for (name, t) in &grads[0] {
                builder.push(name, t.len());
            }
            let plan = builder.finish();
            let mut session = scrambled.begin_step(&plan);
            for (w, stream) in grads.iter().enumerate() {
                let order = shuffled(stream.len(), round * 1000 + w as u64 * 31 + 1);
                for &i in &order {
                    let (name, t) = &stream[i];
                    session.submit(w, name, t);
                }
            }
            let (piped, _) = session.finish();
            assert_bit_equal(&base, &piped, &format!("{} (round {round})", spec.id));
        }
    }
}

/// Aggregation plans through the pipeline: for every registered method,
/// every plan × fusion threshold must reproduce the one-shot
/// `decode_then_merge` reference bit-for-bit, with error-feedback state
/// carried across steps. This is the pipelined half of the plan-equivalence
/// contract (`tests/transport_equivalence.rs` covers the backend half).
#[test]
fn aggregation_plans_are_bit_identical_through_the_pipeline() {
    use grace::core::AggregationPlan;

    for spec in all_specs() {
        for plan in [
            AggregationPlan::ShardedMerge,
            AggregationPlan::HomomorphicSum,
        ] {
            for fusion_bytes in [64usize, usize::MAX] {
                let (mut c1, mut m1) = fleet(&spec);
                let mut reference = GradientExchange::from_fleet(&mut c1, &mut m1);
                let (mut c2, mut m2) = fleet(&spec);
                let mut planned =
                    GradientExchange::from_fleet(&mut c2, &mut m2).with_aggregation(plan);
                for step in 0..2 {
                    let grads = worker_grads(step);
                    let (base, _) = reference.exchange(grads.clone());
                    let (piped, _) = run_session(&mut planned, fusion_bytes, &grads);
                    assert_bit_equal(
                        &base,
                        &piped,
                        &format!("{} ({plan}, fusion {fusion_bytes}, step {step})", spec.id),
                    );
                }
            }
        }
    }
}

/// The homomorphic fold's telemetry contract through the pipeline: with the
/// capability engaged, nothing is decoded (decode CPU stays zero) and the
/// incast accounting records compressed wire bytes, strictly below the
/// dense bytes the reference merge absorbs.
#[test]
fn homomorphic_fold_skips_decode_and_shrinks_incast() {
    use grace::core::AggregationPlan;

    let spec = all_specs()
        .into_iter()
        .find(|s| s.id == "eightbit")
        .expect("eightbit is registered");
    let (mut c1, mut m1) = fleet(&spec);
    let mut reference = GradientExchange::from_fleet(&mut c1, &mut m1);
    let (_, ref_rep) = run_session(&mut reference, 256, &worker_grads(0));
    let (mut c2, mut m2) = fleet(&spec);
    let mut hom = GradientExchange::from_fleet(&mut c2, &mut m2)
        .with_aggregation(AggregationPlan::HomomorphicSum);
    let (_, hom_rep) = run_session(&mut hom, 256, &worker_grads(0));

    assert!(ref_rep.decompress_cpu_seconds > 0.0);
    assert_eq!(
        hom_rep.decompress_cpu_seconds, 0.0,
        "the codebook-space fold must not decode"
    );
    assert!(hom_rep.aggregate_cpu_seconds > 0.0);
    assert!(
        hom_rep.incast_bytes < ref_rep.incast_bytes,
        "compressed fold must absorb fewer bytes: {} vs {}",
        hom_rep.incast_bytes,
        ref_rep.incast_bytes
    );
}

/// The Allgather aggregation path decodes each contribution on its owning
/// lane (fanned over the executor) instead of serially on lane 0; the
/// report records both the wall-clock and summed per-lane CPU decode time,
/// so the parallel-decode win is observable.
#[test]
fn parallel_decode_win_is_recorded_in_the_report() {
    let spec = all_specs()
        .into_iter()
        .find(|s| s.id == "topk")
        .expect("topk is registered");
    let (mut cs, mut ms) = fleet(&spec);
    let mut engine = GradientExchange::from_fleet(&mut cs, &mut ms);
    let (_, report) = run_session(&mut engine, 64, &worker_grads(0));
    assert!(
        report.decompress_cpu_seconds > 0.0,
        "per-lane decode CPU time must be attributed"
    );
    assert!(
        report.decompress_seconds > 0.0,
        "decode wall time must be attributed"
    );
    assert!(report.decode_parallel_speedup() >= 1.0);
}

/// End-to-end golden: the trained parameters are invariant to the fusion
/// threshold. The constants equal `tests/exchange_equivalence.rs`'s goldens
/// — `fusion_bytes = usize::MAX` reproduces the whole-step exchange and
/// every other threshold only re-groups the same per-tensor work.
#[test]
fn trained_parameters_are_invariant_to_fusion_threshold() {
    use grace::compressors::{Qsgd, TopK};
    use grace::core::{NoMemory, ResidualMemory};

    const SEED: u64 = 17;
    const GOLDEN_QSGD: u32 = 0xaa5f_d836;
    const GOLDEN_TOPK: u32 = 0xe0ae_0255;

    fn golden_run(
        fusion_bytes: usize,
        make_c: impl Fn(usize) -> Box<dyn Compressor>,
        make_m: impl Fn() -> Box<dyn Memory>,
    ) -> u32 {
        let n = 4;
        let task = ClassificationDataset::synthetic(128, 8, 2, 0.3, SEED);
        let mut net = models::mlp_classifier("m", 8, &[16], 2, SEED);
        let mut opt = Momentum::new(0.05, 0.9);
        let mut cfg = TrainConfig::new(n, 8, 2, SEED);
        cfg.codec = CodecTiming::Free;
        cfg.fusion_bytes = fusion_bytes;
        let mut cs: Vec<Box<dyn Compressor>> = (0..n).map(&make_c).collect();
        let mut ms: Vec<Box<dyn Memory>> = (0..n).map(|_| make_m()).collect();
        let _ = run_simulated(&cfg, &mut net, &task, &mut opt, &mut cs, &mut ms);
        let mut bytes = Vec::new();
        for (name, t) in net.export_params() {
            bytes.extend_from_slice(name.as_bytes());
            for v in t.as_slice() {
                bytes.extend_from_slice(&v.to_le_bytes());
            }
        }
        crc32(&bytes)
    }

    for fusion_bytes in [1usize, 64 << 10, 2 << 20, usize::MAX] {
        let qsgd = golden_run(
            fusion_bytes,
            |w| Box::new(Qsgd::new(16, 1000 + w as u64)),
            || Box::new(NoMemory::new()),
        );
        assert_eq!(
            qsgd, GOLDEN_QSGD,
            "qsgd diverged at fusion_bytes = {fusion_bytes}: {qsgd:#010x}"
        );
        let topk = golden_run(
            fusion_bytes,
            |_w| Box::new(TopK::new(0.05)),
            || Box::new(ResidualMemory::new()),
        );
        assert_eq!(
            topk, GOLDEN_TOPK,
            "topk diverged at fusion_bytes = {fusion_bytes}: {topk:#010x}"
        );
    }
}
