//! Integration: learning-rate schedules inside the distributed loop, model
//! checkpointing across runs, and replicated schedules with registry
//! compressors.

use grace::compressors::registry;
use grace::core::replicated::{run_local_sgd, ReplicatedConfig};
use grace::core::trainer::{run_simulated, CodecTiming};
use grace::core::{Compressor, Memory, NoCompression, NoMemory, TrainConfig};
use grace::nn::data::ClassificationDataset;
use grace::nn::models;
use grace::nn::optim::{Momentum, Optimizer, Sgd};
use grace::nn::schedule::Schedule;

type Fleet = (Vec<Box<dyn Compressor>>, Vec<Box<dyn Memory>>);

fn baseline_fleet(n: usize) -> Fleet {
    (
        (0..n)
            .map(|_| Box::new(NoCompression::new()) as Box<dyn Compressor>)
            .collect(),
        (0..n)
            .map(|_| Box::new(NoMemory::new()) as Box<dyn Memory>)
            .collect(),
    )
}

#[test]
fn lr_schedule_changes_the_trajectory_and_is_deterministic() {
    let task = ClassificationDataset::synthetic(192, 8, 2, 0.3, 71);
    let run = |schedule: Option<Schedule>| {
        let mut net = models::mlp_classifier("m", 8, &[16], 2, 71);
        let mut cfg = TrainConfig::new(3, 8, 6, 71);
        cfg.codec = CodecTiming::Free;
        cfg.lr_schedule = schedule;
        let mut opt = Momentum::new(0.1, 0.9);
        let (mut cs, mut ms) = baseline_fleet(3);
        let res = run_simulated(&cfg, &mut net, &task, &mut opt, &mut cs, &mut ms);
        (res.final_quality, net.export_params())
    };
    let (_, constant) = run(None);
    let decay = Schedule::StepDecay {
        milestones: vec![3],
        gamma: 0.1,
    };
    let (_, decayed) = run(Some(decay.clone()));
    let differs = constant
        .iter()
        .zip(decayed.iter())
        .any(|((_, a), (_, b))| a.as_slice() != b.as_slice());
    assert!(differs, "schedule must change the trajectory");
    let (_, decayed2) = run(Some(decay));
    for ((_, a), (_, b)) in decayed.iter().zip(decayed2.iter()) {
        assert_eq!(a.as_slice(), b.as_slice(), "schedule runs must reproduce");
    }
}

#[test]
fn checkpoint_resumes_training_bit_exactly() {
    let task = ClassificationDataset::synthetic(128, 8, 2, 0.3, 72);
    // Train 2 epochs, checkpoint, train 2 more.
    let run_epochs = |net: &mut grace::nn::network::Network, epochs: usize| {
        let mut cfg = TrainConfig::new(2, 8, epochs, 72);
        cfg.codec = CodecTiming::Free;
        let mut opt = Sgd::new(0.05); // stateless: restores exactly
        let (mut cs, mut ms) = baseline_fleet(2);
        run_simulated(&cfg, net, &task, &mut opt, &mut cs, &mut ms);
    };
    let dir = std::env::temp_dir().join("grace_resume_test");
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("mid.ckpt");

    let mut full = models::mlp_classifier("m", 8, &[16], 2, 72);
    run_epochs(&mut full, 2);
    grace::nn::checkpoint::save(&mut full, &path).expect("save");

    let mut resumed = models::mlp_classifier("m", 8, &[16], 2, 999);
    grace::nn::checkpoint::load(&mut resumed, &path).expect("load");
    // The restored replica continues exactly where the original stopped:
    // same params => same subsequent quality under the same schedule. (Epoch
    // indices restart, so compare against a fresh run of the same 2 epochs
    // from the checkpoint.)
    let mut reference = models::mlp_classifier("m", 8, &[16], 2, 72);
    run_epochs(&mut reference, 2);
    run_epochs(&mut reference, 2);
    run_epochs(&mut resumed, 2);
    for ((na, a), (_, b)) in reference
        .export_params()
        .iter()
        .zip(resumed.export_params())
    {
        assert_eq!(a.as_slice(), b.as_slice(), "resume diverged at {na}");
    }
    let _ = std::fs::remove_file(path);
}

#[test]
fn local_sgd_accepts_registry_compressors() {
    let task = ClassificationDataset::synthetic(192, 8, 2, 0.3, 73);
    let spec = registry::find("qsgd").expect("registered");
    let (mut cs, mut ms) = registry::build_fleet(&spec, 3, 73);
    let mut cfg = ReplicatedConfig::new(3, 8, 4, 73);
    cfg.sync_every = 2;
    let res = run_local_sgd(
        &cfg,
        |_| models::mlp_classifier("m", 8, &[16], 2, 73),
        |_| Box::new(Sgd::new(0.05)) as Box<dyn Optimizer>,
        &task,
        &mut cs,
        &mut ms,
    );
    assert!(res.final_quality > 0.75, "quality {}", res.final_quality);
    assert!(res.bytes_per_worker_per_sync > 0.0);
}
