//! Offline drop-in subset of the `criterion` benchmark crate.
//!
//! Provides the API surface this workspace's benches use — benchmark groups,
//! `bench_function` / `bench_with_input`, `Throughput`, `BenchmarkId` and the
//! `criterion_group!` / `criterion_main!` macros — with a simple
//! min/median/max timing harness instead of criterion's full statistical
//! machinery. Good enough to compare implementations on one machine; not a
//! substitute for criterion's confidence intervals.
//!
//! When compiled into `cargo test` (criterion benches run with `--test`), the
//! harness detects the flag and performs a single smoke iteration per
//! benchmark so test runs stay fast.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier composed of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter value only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-benchmark timing driver passed to the closure.
pub struct Bencher {
    samples: usize,
    /// Collected per-sample durations (one sample = one closure call).
    times: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, collecting the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up call (not recorded).
        black_box(routine());
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.times.push(t0.elapsed());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    harness: &'a Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the amount of data processed per iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = if self.harness.smoke {
            1
        } else {
            self.sample_size
        };
        let mut b = Bencher {
            samples,
            times: Vec::with_capacity(samples),
        };
        f(&mut b);
        self.report(&id.to_string(), &b.times);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let samples = if self.harness.smoke {
            1
        } else {
            self.sample_size
        };
        let mut b = Bencher {
            samples,
            times: Vec::with_capacity(samples),
        };
        f(&mut b, input);
        self.report(&id.to_string(), &b.times);
        self
    }

    /// Finishes the group (upstream API parity; prints nothing extra).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, times: &[Duration]) {
        if times.is_empty() {
            println!("{}/{id}: no samples", self.name);
            return;
        }
        let mut sorted: Vec<Duration> = times.to_vec();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let line = format!(
            "{}/{id}: min {:?}  median {:?}  max {:?}  ({} samples)",
            self.name,
            sorted[0],
            median,
            sorted[sorted.len() - 1],
            sorted.len()
        );
        match self.throughput {
            Some(Throughput::Bytes(bytes)) if median > Duration::ZERO => {
                let gbps = bytes as f64 / median.as_secs_f64() / 1e9;
                println!("{line}  [{gbps:.3} GB/s]");
            }
            Some(Throughput::Elements(elems)) if median > Duration::ZERO => {
                let meps = elems as f64 / median.as_secs_f64() / 1e6;
                println!("{line}  [{meps:.3} Melem/s]");
            }
            _ => println!("{line}"),
        }
    }
}

/// Top-level benchmark harness (subset of `criterion::Criterion`).
pub struct Criterion {
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Under `cargo test`, bench targets are invoked with `--test`: run a
        // single smoke iteration so the suite stays fast.
        let smoke = std::env::args().any(|a| a == "--test");
        Criterion { smoke }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            harness: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a group of benchmark functions (upstream macro parity).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point (upstream macro parity).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion { smoke: true };
        let mut calls = 0usize;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3).throughput(Throughput::Bytes(1024));
            g.bench_function("f", |b| b.iter(|| calls += 1));
            g.bench_with_input(BenchmarkId::new("f", 7), &7, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
            g.finish();
        }
        // smoke mode: warm-up + 1 sample.
        assert_eq!(calls, 2);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
