//! Offline drop-in subset of the `proptest` crate.
//!
//! Implements the slice of the proptest API this workspace uses — the
//! [`proptest!`] macro, [`Strategy`] over numeric ranges,
//! [`collection::vec`], `ProptestConfig::with_cases` and the `prop_assert*`
//! macros — on top of the workspace's deterministic seeded RNG.
//!
//! Unlike upstream proptest there is **no shrinking**: on failure the macro
//! reports the case number and the seed, which (with the deterministic RNG)
//! is enough to replay the exact failing inputs. Every test function derives
//! its seed from its own name via FNV-1a, so failures reproduce bit-exactly
//! across runs.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod collection;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Runs each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_strategy_for_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// The `any::<T>()` strategy for full-range standard types.
pub fn any<T: rand::Standard>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        use rand::Rng;
        rng.gen::<T>()
    }
}

/// Derives the deterministic per-test seed from the test's name (FNV-1a).
pub fn seed_for(test_name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `body` for `config.cases` seeded cases. Used by the [`proptest!`]
/// macro; not part of the public proptest API.
pub fn run_cases(test_name: &str, config: &ProptestConfig, mut body: impl FnMut(&mut StdRng)) {
    let seed = seed_for(test_name);
    let mut rng = StdRng::seed_from_u64(seed);
    for case in 0..config.cases {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(panic) = result {
            eprintln!(
                "proptest: property `{test_name}` failed at case {case}/{} (seed {seed:#x})",
                config.cases
            );
            std::panic::resume_unwind(panic);
        }
    }
}

/// Commonly imported names, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{any, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Property assertion (fails the current case).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares seeded property tests.
///
/// Supports the upstream surface this workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0u32..10, mut v in proptest::collection::vec(-1.0f32..1.0, 1..50)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    // Internal rule — must precede the catch-all or it recurses forever.
    (@config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($p:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(stringify!($name), &config, |rng| {
                    $(let $p = $crate::Strategy::generate(&($strat), rng);)+
                    $body
                });
            }
        )*
    };
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@config ($cfg) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..17, f in -1.0f32..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vecs_respect_size(v in crate::collection::vec(0u8..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn mut_bindings_work(mut v in crate::collection::vec(-5.0f64..5.0, 8)) {
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            prop_assert_eq!(v.len(), 8);
        }
    }

    #[test]
    fn seeds_are_stable_per_name() {
        assert_eq!(crate::seed_for("abc"), crate::seed_for("abc"));
        assert_ne!(crate::seed_for("abc"), crate::seed_for("abd"));
    }
}
