//! Collection strategies (`proptest::collection` subset).

use crate::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// A length specification for [`vec`]: an exact size or a half-open range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_exclusive: r.end() + 1,
        }
    }
}

/// Strategy producing `Vec<S::Value>` with a length drawn from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Creates a strategy for vectors of `element` values with `size` elements.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
