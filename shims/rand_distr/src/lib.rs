//! Offline drop-in subset of the `rand_distr` crate: the [`Distribution`]
//! trait and a Box–Muller [`Normal`] distribution, which is all this
//! workspace uses (Gaussian weight init and data synthesis).

/// Types that can draw samples of `T` from a generator.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error returned for invalid [`Normal`] parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// The standard deviation was negative or non-finite.
    BadVariance,
    /// The mean was non-finite.
    MeanTooSmall,
}

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NormalError::BadVariance => write!(f, "standard deviation must be finite and >= 0"),
            NormalError::MeanTooSmall => write!(f, "mean must be finite"),
        }
    }
}

impl std::error::Error for NormalError {}

/// Floating-point scalars the [`Normal`] distribution is generic over.
pub trait Float: Copy + PartialOrd {
    /// Converts from `f64` (used internally by Box–Muller).
    fn from_f64(v: f64) -> Self;
    /// Converts to `f64`.
    fn to_f64(self) -> f64;
    /// Whether the value is finite.
    fn is_finite(self) -> bool;
}

impl Float for f32 {
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    fn to_f64(self) -> f64 {
        f64::from(self)
    }
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
}

impl Float for f64 {
    fn from_f64(v: f64) -> Self {
        v
    }
    fn to_f64(self) -> f64 {
        self
    }
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
}

/// The normal distribution `N(mean, std_dev²)`, sampled via Box–Muller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal<F: Float> {
    mean: F,
    std_dev: F,
}

impl<F: Float> Normal<F> {
    /// Creates `N(mean, std_dev²)`.
    ///
    /// # Errors
    ///
    /// Returns [`NormalError`] if `std_dev` is negative/non-finite or `mean`
    /// is non-finite.
    pub fn new(mean: F, std_dev: F) -> Result<Self, NormalError> {
        if !mean.is_finite() {
            return Err(NormalError::MeanTooSmall);
        }
        if !std_dev.is_finite() || std_dev.to_f64() < 0.0 {
            return Err(NormalError::BadVariance);
        }
        Ok(Normal { mean, std_dev })
    }

    /// The distribution mean.
    pub fn mean(&self) -> F {
        self.mean
    }

    /// The distribution standard deviation.
    pub fn std_dev(&self) -> F {
        self.std_dev
    }
}

impl<F: Float> Distribution<F> for Normal<F> {
    fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> F {
        // Box–Muller: one fresh standard-normal draw per sample (the cosine
        // branch only, so each sample consumes exactly two u64s and
        // substreams stay aligned).
        let u1 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let u2 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        // Guard against ln(0).
        let r = (-2.0 * (1.0 - u1).max(f64::MIN_POSITIVE).ln()).sqrt();
        let z = r * (2.0 * std::f64::consts::PI * u2).cos();
        F::from_f64(self.mean.to_f64() + self.std_dev.to_f64() * z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(17);
        let n = Normal::new(1.0f64, 2.0).unwrap();
        let samples: Vec<f64> = (0..50_000).map(|_| n.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(0.0f32, -1.0).is_err());
        assert!(Normal::new(f32::NAN, 1.0).is_err());
        assert!(Normal::new(0.0f32, 0.0).is_ok());
    }

    #[test]
    fn zero_std_is_constant() {
        let mut rng = StdRng::seed_from_u64(23);
        let n = Normal::new(3.5f32, 0.0).unwrap();
        for _ in 0..10 {
            assert_eq!(n.sample(&mut rng), 3.5);
        }
    }
}
