//! Offline drop-in subset of `parking_lot`: [`Mutex`], [`Condvar`] and
//! [`RwLock`] with `parking_lot`'s non-poisoning API, backed by the standard
//! library primitives.
//!
//! Poisoning is deliberately swallowed (`parking_lot` has no poisoning): a
//! panicked worker thread must not cascade lock failures into the rest of a
//! fault-injection test, which is exactly the scenario this workspace
//! exercises.

use std::fmt;
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual-exclusion primitive (non-poisoning `lock()` like `parking_lot`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a [`Condvar::wait_for`] (mirrors `parking_lot::WaitTimeoutResult`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable paired with [`Mutex`] (non-poisoning).
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks on the guard until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        take_guard(&mut guard.inner, |g| {
            self.inner.wait(g).unwrap_or_else(PoisonError::into_inner)
        });
    }

    /// Blocks on the guard until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        take_guard(&mut guard.inner, |g| {
            let (g, res) = self
                .inner
                .wait_timeout(g, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            timed_out = res.timed_out();
            g
        });
        WaitTimeoutResult { timed_out }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// Temporarily moves a `std` guard out of a `&mut` slot to thread it through
/// a consuming API. The closure must return a guard for the same mutex;
/// `std::sync::Condvar::wait*` does exactly that.
fn take_guard<'a, T>(
    slot: &mut sync::MutexGuard<'a, T>,
    f: impl FnOnce(sync::MutexGuard<'a, T>) -> sync::MutexGuard<'a, T>,
) {
    // SAFETY: `slot` is forgotten immediately after the read, so the guard is
    // never duplicated: exactly one live guard exists at every point, and the
    // write at the end restores the invariant before anyone can observe the
    // moved-from slot.
    unsafe {
        let guard = std::ptr::read(slot);
        let new = f(guard);
        std::ptr::write(slot, new);
    }
}

/// A reader-writer lock (non-poisoning, `parking_lot`-style API).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning.
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn condvar_notifies() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut g = m.lock();
            *g = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            cv.wait(&mut g);
        }
        assert!(*g);
        t.join().unwrap();
    }

    #[test]
    fn condvar_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }
}
