//! Sequence-related sampling helpers.

use crate::{Rng, RngCore};

/// Extension methods on slices (upstream `rand::seq::SliceRandom` subset).
pub trait SliceRandom {
    /// Shuffles the slice in place (Fisher–Yates), deterministically for a
    /// seeded generator.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = crate::bounded_u64(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }
}

/// Index sampling (upstream `rand::seq::index` subset).
pub mod index {
    use super::RngCore;

    /// A set of sampled indices (upstream `rand::seq::index::IndexVec`
    /// lookalike).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct IndexVec(Vec<usize>);

    impl IndexVec {
        /// Number of sampled indices.
        pub fn len(&self) -> usize {
            self.0.len()
        }

        /// Whether the sample is empty.
        pub fn is_empty(&self) -> bool {
            self.0.is_empty()
        }

        /// Consumes the sample into a plain vector.
        pub fn into_vec(self) -> Vec<usize> {
            self.0
        }
    }

    impl IntoIterator for IndexVec {
        type Item = usize;
        type IntoIter = std::vec::IntoIter<usize>;

        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// Samples `amount` distinct indices from `0..length`, in sampling order.
    ///
    /// Uses a partial Fisher–Yates shuffle: `O(length)` memory, `O(amount)`
    /// swaps — the honest cost model for Random-k selection.
    ///
    /// # Panics
    ///
    /// Panics if `amount > length`.
    pub fn sample<R>(rng: &mut R, length: usize, amount: usize) -> IndexVec
    where
        R: RngCore + ?Sized,
    {
        assert!(
            amount <= length,
            "cannot sample {amount} indices from {length}"
        );
        let mut pool: Vec<usize> = (0..length).collect();
        let mut out = Vec::with_capacity(amount);
        for i in 0..amount {
            let j = i + (crate::bounded_u64(rng, (length - i) as u64) as usize);
            pool.swap(i, j);
            out.push(pool[i]);
        }
        IndexVec(out)
    }
}

#[cfg(test)]
mod tests {
    use super::index::sample;
    use super::SliceRandom;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle should move things");
    }

    #[test]
    fn sample_yields_distinct_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = sample(&mut rng, 50, 20).into_vec();
        assert_eq!(s.len(), 20);
        let mut d = s.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 20, "indices must be distinct");
        assert!(s.iter().all(|&i| i < 50));
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_rejects_oversample() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = sample(&mut rng, 3, 4);
    }
}
