//! Offline drop-in subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a small, API-compatible implementation of the slice of `rand` it actually
//! uses: [`rngs::StdRng`], the [`Rng`] / [`SeedableRng`] / [`RngCore`]
//! traits, [`seq::SliceRandom::shuffle`] and [`seq::index::sample`].
//!
//! The generator is SplitMix64 — not cryptographic, but statistically solid
//! for simulation workloads and, crucially, **deterministic**: every seeded
//! stream reproduces bit-identically across runs and platforms, which is the
//! property the workspace's reproducibility tests actually rely on. The
//! stream differs from upstream `rand`'s ChaCha12-based `StdRng`, so absolute
//! numeric outputs differ from runs made with the real crate; all in-repo
//! tests assert internal consistency, not upstream-stream values.

pub mod rngs;
pub mod seq;

/// Low-level generator interface (object-safe).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Values samplable uniformly from a generator's raw bits (the `Standard`
/// distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable uniformly (the `SampleRange` of upstream `rand`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws a uniform integer in `[0, span)` without modulo bias (widening
/// multiply).
pub(crate) fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// High-level convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_reproduce() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f32 = rng.gen();
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let j = rng.gen_range(2u32..=5);
            assert!((2..=5).contains(&j));
            let f = rng.gen_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
